(* The session-server stack below the socket: the shared JSON value,
   the SHAPWIRE_v1 encoders/decoders (qcheck round-trips over arbitrary
   byte strings — session names, scripts, and values must survive the
   wire exactly), the streaming line reader the server and the script
   parser share, and the registry's LRU eviction / snapshot / restore
   cycle. *)

module J = Aggshap_json.Json
module Protocol = Aggshap_server.Protocol
module Registry = Aggshap_server.Registry
module Server = Aggshap_server.Server
module Client = Aggshap_server.Client
module Api = Aggshap_api.Api
module Script = Aggshap_incr.Script
module Session = Aggshap_incr.Session
module Q = Aggshap_arith.Rational
module Fact = Aggshap_relational.Fact

let prop name count arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ------------------------------------------------------------------ *)
(* JSON compact emission round-trip                                    *)
(* ------------------------------------------------------------------ *)

(* Arbitrary byte strings: control characters are \u-escaped on the way
   out and decoded on the way back; bytes >= 0x80 travel raw. *)
let arb_bytes = QCheck.(string_of_size (Gen.int_range 0 30))

(* Floats are emitted at %.9g precision, so the exact round-trip
   property quantifies over float-free values only. *)
let arb_json =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) (int_range (-1000000) 1000000);
        map (fun s -> J.String s) arb_bytes.QCheck.gen ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [ (3, scalar);
          (1, map (fun vs -> J.List vs) (list_size (int_range 0 4) (value (depth - 1))));
          (1,
           map
             (fun kvs -> J.Obj kvs)
             (list_size (int_range 0 4)
                (pair arb_bytes.QCheck.gen (value (depth - 1))))) ]
  in
  QCheck.make (value 3) ~print:J.to_line

let json_tests =
  [ prop "to_line |> parse is the identity (float-free)" 500 arb_json (fun v ->
        match J.parse (J.to_line v) with
        | Ok v' -> v = v'
        | Error msg -> QCheck.Test.fail_reportf "parse error: %s" msg);
    prop "to_line emits a single line" 500 arb_json (fun v ->
        not (String.contains (J.to_line v) '\n'));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"pretty to_string |> parse is the identity" ~count:200
         arb_json (fun v ->
           match J.parse (J.to_string v) with
           | Ok v' -> v = v'
           | Error msg -> QCheck.Test.fail_reportf "parse error: %s" msg)) ]

(* ------------------------------------------------------------------ *)
(* SHAPWIRE_v1 round-trips                                             *)
(* ------------------------------------------------------------------ *)

let arb_spec =
  let open QCheck.Gen in
  map
    (fun (query, db, agg, tau, jobs) -> { Api.query; db; agg; tau; jobs })
    (tup5 arb_bytes.QCheck.gen arb_bytes.QCheck.gen arb_bytes.QCheck.gen
       (opt arb_bytes.QCheck.gen)
       (opt (int_range 1 64)))

let arb_request =
  let open QCheck.Gen in
  let s = arb_bytes.QCheck.gen in
  let gen =
    oneof
      [ map2 (fun session spec -> Protocol.Open { session; spec }) s arb_spec;
        map (fun session -> Protocol.Solve { session }) s;
        map2 (fun session script -> Protocol.Update { session; script }) s s;
        map2 (fun session tau -> Protocol.Set_tau { session; tau }) s s;
        map (fun session -> Protocol.Explain { session }) s;
        map (fun session -> Protocol.Stats { session }) (opt s);
        map (fun session -> Protocol.Close { session }) s;
        return Protocol.Ping;
        return Protocol.Shutdown ]
  in
  QCheck.make gen ~print:Protocol.encode_request

let arb_response =
  let open QCheck.Gen in
  let s = arb_bytes.QCheck.gen in
  let nat = int_range 0 1000 in
  let gen =
    oneof
      [ map2 (fun session facts -> Protocol.Opened { session; facts }) s nat;
        map2
          (fun session values -> Protocol.Solved { session; values })
          s
          (list_size (int_range 0 5) (pair s s));
        map2 (fun session applied -> Protocol.Updated { session; applied }) s nat;
        map (fun session -> Protocol.Tau_set { session }) s;
        map2
          (fun (session, cls, frontier, within_frontier, algorithm) plan ->
            Protocol.Explained
              { session; cls; frontier; within_frontier; algorithm; plan })
          (tup5 s s s bool s)
          (list_size (int_range 0 5) s);
        map2
          (fun session (steps, games_computed, games_reused, full_recomputes, facts) ->
            Protocol.Session_stats
              { session;
                stats =
                  { Protocol.steps; games_computed; games_reused; full_recomputes;
                    facts; endogenous = facts } })
          s (tup5 nat nat nat nat nat);
        map
          (fun (sessions, requests, evictions, restores) ->
            Protocol.Server_stats { sessions; requests; evictions; restores })
          (tup4 (list_size (int_range 0 4) (pair s bool)) nat nat nat);
        map (fun session -> Protocol.Closed { session }) s;
        return Protocol.Pong;
        return Protocol.Shutting_down;
        map2 (fun line message -> Protocol.Error { line; message }) (opt (int_range 1 99)) s ]
  in
  QCheck.make gen ~print:Protocol.encode_response

let protocol_tests =
  [ prop "encode_request |> decode_request is the identity" 1000 arb_request
      (fun req ->
        match Protocol.decode_request (Protocol.encode_request req) with
        | Ok req' -> req = req'
        | Error msg -> QCheck.Test.fail_reportf "decode error: %s" msg);
    prop "encode_response |> decode_response is the identity" 1000 arb_response
      (fun r ->
        match Protocol.decode_response (Protocol.encode_response r) with
        | Ok r' -> r = r'
        | Error msg -> QCheck.Test.fail_reportf "decode error: %s" msg);
    prop "encoded requests are single lines" 500 arb_request (fun req ->
        let line = Protocol.encode_request req in
        not (String.contains line '\n') && not (String.contains line '\r'));
    ( "malformed requests are rejected with a message",
      `Quick,
      fun () ->
        List.iter
          (fun line ->
            match Protocol.decode_request line with
            | Error msg -> Alcotest.(check bool) "message non-empty" true (msg <> "")
            | Ok _ -> Alcotest.failf "accepted malformed request %S" line)
          [ "garbage"; "{}"; "{\"op\": 7}"; "{\"op\": \"nope\"}";
            "{\"op\": \"solve\"}" (* missing session *); "[1, 2]"; "" ] ) ]

(* ------------------------------------------------------------------ *)
(* The streaming line reader                                           *)
(* ------------------------------------------------------------------ *)

let feed_chunked t chunk_size s =
  let n = String.length s in
  let rec go off acc =
    if off >= n then acc
    else
      let len = min chunk_size (n - off) in
      go (off + len) (acc @ Script.Reader.feed t ~off ~len s)
  in
  go 0 []

let reader_tests =
  [ ( "final line without trailing newline is surfaced at close",
      `Quick,
      fun () ->
        let t = Script.Reader.create () in
        let lines = Script.Reader.feed t "insert R(3)\ndelete R(1)" in
        Alcotest.(check (list string)) "one complete line" [ "insert R(3)" ] lines;
        Alcotest.(check (option string))
          "unterminated tail" (Some "delete R(1)") (Script.Reader.close t);
        Alcotest.(check (option string)) "close is idempotent" None (Script.Reader.close t)
    );
    ( "CRLF lines are stripped",
      `Quick,
      fun () ->
        let t = Script.Reader.create () in
        let lines = Script.Reader.feed t "a\r\nb\r\n" in
        Alcotest.(check (list string)) "CR stripped" [ "a"; "b" ] lines );
    ( "feed after close raises",
      `Quick,
      fun () ->
        let t = Script.Reader.create () in
        ignore (Script.Reader.close t);
        Alcotest.check_raises "closed reader"
          (Invalid_argument "Script.Reader.feed: reader is closed") (fun () ->
            ignore (Script.Reader.feed t "x\n")) );
    prop "chunked feeding matches whole-string lines" 300
      (QCheck.pair
         (QCheck.int_range 1 7)
         (QCheck.string_gen_of_size (QCheck.Gen.int_range 0 60)
            (QCheck.Gen.oneofl [ 'a'; 'b'; '\n'; '\r' ])))
      (fun (chunk, s) ->
        let t = Script.Reader.create () in
        let chunked = feed_chunked t chunk s in
        let chunked =
          match Script.Reader.close t with
          | Some tail -> chunked @ [ tail ]
          | None -> chunked
        in
        chunked = Script.lines s);
    ( "Script.parse keeps an unterminated final operation",
      `Quick,
      fun () ->
        match Script.parse "insert R(3)\ndelete R(1)" with
        | Ok ops ->
          Alcotest.(check int) "both operations parsed" 2 (List.length ops)
        | Error msg -> Alcotest.fail msg ) ]

(* ------------------------------------------------------------------ *)
(* Registry: LRU eviction, snapshot, restore                           *)
(* ------------------------------------------------------------------ *)

let spec =
  { Api.query = "Q(x) <- R(x, y), S(y)";
    db = "R(1, 10)\nR(2, 10)\nR(3, 20)\nS(10)\nS(20) @exo";
    agg = "sum"; tau = Some "id:R:0"; jobs = Some 1 }

let ok = function Ok v -> v | Error msg -> Alcotest.fail msg

let values session =
  List.map (fun (f, v) -> (Fact.to_string f, Q.to_string v)) (Session.shapley_all session)

let temp_dir () =
  let d = Filename.temp_file "aggshap_registry" ".state" in
  Sys.remove d;
  d

let registry_tests =
  [ ( "LRU evicts the least recently used, restore is transparent",
      `Quick,
      fun () ->
        let reg = ok (Registry.create ~max_live:2 ()) in
        ignore (ok (Registry.open_session reg "a" spec));
        ignore (ok (Registry.open_session reg "b" spec));
        let expected = ok (Registry.with_session reg "a" (fun _ s -> Ok (values s))) in
        (* "b" is now LRU; a third session evicts it. *)
        ignore (ok (Registry.open_session reg "c" spec));
        Alcotest.(check (list (pair string bool)))
          "b evicted"
          [ ("a", true); ("b", false); ("c", true) ]
          (Registry.sessions reg);
        Alcotest.(check int) "one eviction" 1 (Registry.evictions reg);
        (* Touching "b" restores it and evicts the new LRU ("a"). *)
        let restored = ok (Registry.with_session reg "b" (fun _ s -> Ok (values s))) in
        Alcotest.(check (list (pair string string)))
          "restored values identical" expected restored;
        Alcotest.(check int) "one restore" 1 (Registry.restores reg);
        Alcotest.(check (list (pair string bool)))
          "a evicted in turn"
          [ ("a", false); ("b", true); ("c", true) ]
          (Registry.sessions reg) );
    ( "eviction preserves applied updates",
      `Quick,
      fun () ->
        let reg = ok (Registry.create ~max_live:1 ()) in
        ignore (ok (Registry.open_session reg "a" spec));
        ignore
          (ok
             (Registry.with_session reg "a" (fun _ s ->
                  Api.apply_script s "insert R(4, 20)\ndelete R(1, 10)")));
        let before = ok (Registry.with_session reg "a" (fun _ s -> Ok (values s))) in
        ignore (ok (Registry.open_session reg "b" spec)) (* evicts a *);
        let after = ok (Registry.with_session reg "a" (fun _ s -> Ok (values s))) in
        Alcotest.(check (list (pair string string)))
          "values identical across evict/restore" before after );
    ( "snapshots survive a registry restart",
      `Quick,
      fun () ->
        let dir = temp_dir () in
        let reg = ok (Registry.create ~state_dir:dir ~max_live:4 ()) in
        ignore (ok (Registry.open_session reg "tenant one" spec));
        ignore
          (ok
             (Registry.with_session reg "tenant one" (fun _ s ->
                  Api.apply_script s "insert R(4, 20)")));
        let before =
          ok (Registry.with_session reg "tenant one" (fun _ s -> Ok (values s)))
        in
        Registry.snapshot_all reg;
        (* A new registry over the same directory sees the session. *)
        let reg2 = ok (Registry.create ~state_dir:dir ~max_live:4 ()) in
        Alcotest.(check (list (pair string bool)))
          "registered as evicted"
          [ ("tenant one", false) ]
          (Registry.sessions reg2);
        let after =
          ok (Registry.with_session reg2 "tenant one" (fun _ s -> Ok (values s)))
        in
        Alcotest.(check (list (pair string string)))
          "values identical across restart" before after;
        ignore (ok (Registry.close reg2 "tenant one"));
        Alcotest.(check (list string)) "snapshot removed" []
          (Array.to_list (Sys.readdir dir)) );
    ( "open errors surface eagerly",
      `Quick,
      fun () ->
        let reg = ok (Registry.create ~max_live:1 ()) in
        (match Registry.open_session reg "bad" { spec with Api.query = "nope" } with
         | Error msg ->
           Alcotest.(check bool) "names the query" true
             (String.length msg > 0)
         | Ok _ -> Alcotest.fail "opened a session with an unparsable query");
        Alcotest.(check (list (pair string bool)))
          "nothing registered" [] (Registry.sessions reg) );
    ( "unknown session is an error",
      `Quick,
      fun () ->
        let reg = ok (Registry.create ~max_live:1 ()) in
        match Registry.with_session reg "ghost" (fun _ _ -> Ok ()) with
        | Error msg ->
          Alcotest.(check string) "message" "no such session \"ghost\" (open it first)" msg
        | Ok () -> Alcotest.fail "found a session that was never opened" ) ]

(* ------------------------------------------------------------------ *)
(* Serve-loop hardening: EINTR retries, abrupt-disconnect accounting   *)
(* ------------------------------------------------------------------ *)

(* The loop installs SIGINT/SIGTERM handlers, so any blocking syscall
   can return EINTR mid-serve; and a client that dies with unread data
   in its queue surfaces as ECONNRESET, not EOF. Both used to kill the
   connection's pending work. *)

let start_server socket =
  match Unix.fork () with
  | 0 ->
    let config =
      { Server.socket; max_sessions = 2; state_dir = None; default_jobs = Some 1;
        log = ignore }
    in
    (match Server.run config with Ok () -> Unix._exit 0 | Error _ -> Unix._exit 1)
  | pid ->
    let rec poll tries =
      if tries = 0 then Alcotest.fail "server did not come up"
      else
        match Client.with_connection socket (fun c -> Client.request c Protocol.Ping) with
        | Ok Protocol.Pong -> ()
        | _ ->
          Unix.sleepf 0.05;
          poll (tries - 1)
    in
    poll 100;
    pid

let server_requests socket =
  match
    Client.with_connection socket (fun c ->
        Client.request c (Protocol.Stats { session = None }))
  with
  | Ok (Protocol.Server_stats { requests; _ }) -> requests
  | Ok _ -> Alcotest.fail "unexpected reply to stats"
  | Error msg -> Alcotest.fail msg

let serve_tests =
  [ ( "retry_intr retries EINTR and preserves other outcomes",
      `Quick,
      fun () ->
        let calls = ref 0 in
        let v =
          Server.retry_intr (fun () ->
              incr calls;
              if !calls < 4 then raise (Unix.Unix_error (Unix.EINTR, "read", ""));
              42)
        in
        Alcotest.(check int) "value after retries" 42 v;
        Alcotest.(check int) "EINTR retried three times" 4 !calls;
        Alcotest.check_raises "non-EINTR errors propagate"
          (Unix.Unix_error (Unix.EBADF, "read", "")) (fun () ->
            Server.retry_intr (fun () ->
                raise (Unix.Unix_error (Unix.EBADF, "read", "")))) );
    ( "read_retry survives SIGALRM interruptions",
      `Quick,
      fun () ->
        let r, w = Unix.pipe () in
        let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
        (* A repeating 20ms timer guarantees the blocking read below is
           interrupted several times before the writer's 250ms delay
           elapses; a bare [Unix.read] would raise EINTR here. *)
        ignore
          (Unix.setitimer Unix.ITIMER_REAL { Unix.it_value = 0.02; it_interval = 0.02 });
        Fun.protect
          ~finally:(fun () ->
            ignore
              (Unix.setitimer Unix.ITIMER_REAL { Unix.it_value = 0.0; it_interval = 0.0 });
            Sys.set_signal Sys.sigalrm old;
            (try Unix.close r with Unix.Unix_error _ -> ()))
          (fun () ->
            match Unix.fork () with
            | 0 ->
              (* The itimer is not inherited: the child just waits long
                 enough for the parent to block and take some alarms. *)
              Unix.close r;
              Unix.sleepf 0.25;
              ignore (Unix.write_substring w "interrupted" 0 11);
              Unix._exit 0
            | pid ->
              Unix.close w;
              let buf = Bytes.create 64 in
              let n = Server.read_retry r buf 0 64 in
              Alcotest.(check string)
                "payload delivered across interruptions" "interrupted"
                (Bytes.sub_string buf 0 n);
              ignore (Server.retry_intr (fun () -> Unix.waitpid [] pid))) );
    ( "abrupt disconnect mid-line still counts the final request",
      `Quick,
      fun () ->
        let socket = Filename.temp_file "aggshap_server" ".sock" in
        Sys.remove socket;
        let pid = start_server socket in
        Fun.protect
          ~finally:(fun () ->
            ignore
              (Client.with_connection socket (fun c ->
                   Client.request c Protocol.Shutdown));
            ignore (Server.retry_intr (fun () -> Unix.waitpid [] pid));
            try Sys.remove socket with Sys_error _ -> ())
          (fun () ->
            let before = server_requests socket in
            (* One complete request, then a second with no trailing
               newline; close without reading the first reply, so the
               server's next read sees ECONNRESET (a stream unix socket
               that dies with unread data resets its peer) rather than
               a clean EOF. Either way the unterminated line must be
               flushed and counted. *)
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX socket);
            let ping = Protocol.encode_request Protocol.Ping in
            let payload = ping ^ "\n" ^ ping in
            ignore (Unix.write_substring fd payload 0 (String.length payload));
            (match Unix.select [ fd ] [] [] 5.0 with
             | [ _ ], _, _ -> ()
             | _ -> Alcotest.fail "no reply from server");
            Unix.close fd;
            (* Give the loop a round to observe the disconnect. *)
            Unix.sleepf 0.2;
            let after = server_requests socket in
            (* The terminated ping, the flushed unterminated ping, and
               the second stats request itself. *)
            Alcotest.(check int) "both pings counted" 3 (after - before)) ) ]

let () =
  Alcotest.run "server"
    [ ("json line round-trips", json_tests);
      ("SHAPWIRE_v1 round-trips", protocol_tests);
      ("streaming line reader", reader_tests);
      ("registry LRU / snapshot / restore", registry_tests);
      ("serve loop hardening", serve_tests) ]
