(* Property tests (qcheck) for the core data structures, corner-case
   scenario tests for the solvers (empty databases, fully exogenous
   databases, irrelevant facts, tiny instances), and the Shapley-axiom
   invariants (efficiency, null player, symmetry) for all six frontier
   DP families on the fixed-seed fuzz corpus. *)

module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module C = Aggshap_arith.Combinat
module Bag = Aggshap_agg.Bag
module Tables = Aggshap_core.Tables
module Cq = Aggshap_cq.Cq
module Parser = Aggshap_cq.Parser
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Core = Aggshap_core
module Catalog = Aggshap_workload.Catalog
module Plan = Aggshap_cq.Plan

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ------------------------------------------------------------------ *)
(* Bags                                                                *)
(* ------------------------------------------------------------------ *)

let arb_int_list = QCheck.(list_of_size (Gen.int_range 0 20) (int_range (-10) 10))

let bag_of ns = Bag.of_list (List.map Q.of_int ns)

let bag_props =
  [ prop "bag size = list length" 300 arb_int_list (fun ns ->
        Bag.size (bag_of ns) = List.length ns);
    prop "union sizes add" 300 QCheck.(pair arb_int_list arb_int_list) (fun (a, b) ->
        Bag.size (Bag.union (bag_of a) (bag_of b)) = List.length a + List.length b);
    prop "multiplicity counts occurrences" 300 QCheck.(pair arb_int_list (int_range (-10) 10))
      (fun (ns, x) ->
        Bag.multiplicity (Q.of_int x) (bag_of ns)
        = List.length (List.filter (Int.equal x) ns));
    prop "elements sorted and complete" 300 arb_int_list (fun ns ->
        let es = Bag.elements (bag_of ns) in
        List.length es = List.length ns
        && List.sort Q.compare es = es);
    prop "sum matches fold" 300 arb_int_list (fun ns ->
        Q.equal (Bag.sum (bag_of ns)) (Q.of_int (List.fold_left ( + ) 0 ns)));
    prop "has_duplicates iff some repeat" 300 arb_int_list (fun ns ->
        Bag.has_duplicates (bag_of ns)
        = List.exists
            (fun x -> List.length (List.filter (Int.equal x) ns) >= 2)
            (List.sort_uniq Stdlib.compare ns));
    prop "aggregate on bag = aggregate on sorted list" 200 arb_int_list (fun ns ->
        QCheck.assume (ns <> []);
        let b = bag_of ns in
        let sorted = List.sort Stdlib.compare ns in
        Q.equal (Aggregate.apply Aggregate.Min b) (Q.of_int (List.hd sorted))
        && Q.equal (Aggregate.apply Aggregate.Max b) (Q.of_int (List.nth sorted (List.length ns - 1)))
        && Q.equal (Aggregate.apply Aggregate.Count b) (Q.of_int (List.length ns)));
    prop "quantile between min and max" 200
      QCheck.(pair arb_int_list (int_range 1 9))
      (fun (ns, tenths) ->
        QCheck.assume (ns <> []);
        let b = bag_of ns in
        let q = Aggregate.apply (Aggregate.Quantile (Q.of_ints tenths 10)) b in
        Q.compare (Aggregate.apply Aggregate.Min b) q <= 0
        && Q.compare q (Aggregate.apply Aggregate.Max b) <= 0);
  ]

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let arb_counts =
  let gen =
    QCheck.Gen.(
      let* n = int_range 0 6 in
      let* entries = list_size (return (n + 1)) (int_range 0 50) in
      return (Array.of_list (List.map B.of_int entries)))
  in
  QCheck.make gen ~print:(fun c ->
      String.concat ";" (Array.to_list (Array.map B.to_string c)))

let tables_props =
  [ prop "full sums to 2^n" 50 (QCheck.int_range 0 20) (fun n ->
        B.equal (Tables.total (Tables.full n)) (B.pow B.two n));
    prop "convolve total multiplies" 200 QCheck.(pair arb_counts arb_counts)
      (fun (a, b) ->
        B.equal
          (Tables.total (Tables.convolve a b))
          (B.mul (Tables.total a) (Tables.total b)));
    prop "convolve with delta shifts" 200 arb_counts (fun a ->
        let shifted = Tables.convolve a (Tables.delta 1 1) in
        Array.length shifted = Array.length a + 1
        && B.is_zero shifted.(0)
        && Array.for_all2 B.equal a (Array.sub shifted 1 (Array.length a)));
    prop "pad preserves full" 100 QCheck.(pair (int_range 0 8) (int_range 0 8))
      (fun (n, p) ->
        let padded = Tables.pad p (Tables.full n) in
        Array.for_all2 B.equal padded (Tables.full (n + p)));
    prop "complement is involutive" 200 arb_counts (fun a ->
        let n = Array.length a - 1 in
        QCheck.assume (n >= 0);
        Array.for_all2 B.equal a (Tables.complement n (Tables.complement n a)));
    (* The balanced-tree reduction must be bit-identical to the plain
       left fold it replaced in the DP block combiners. *)
    prop "convolve_many = left fold of convolve" 200
      QCheck.(list_of_size (Gen.int_range 0 8) arb_counts)
      (fun ts ->
        let tree = Tables.convolve_many ts in
        let fold =
          match ts with
          | [] -> [| B.one |]
          | t :: rest -> List.fold_left Tables.convolve t rest
        in
        Array.length tree = Array.length fold && Array.for_all2 B.equal tree fold);
    (* Same for the common-denominator weighted sum vs the naive
       scale-and-add loop it replaced. *)
    prop "weighted_sum = fold of scale_to/add_rat" 200
      QCheck.(pair (int_range 0 6)
                (list_of_size (Gen.int_range 0 6)
                   (pair (pair (int_range (-20) 20) (int_range 1 20))
                      (list_of_size (Gen.return 7) (int_range 0 50)))))
      (fun (_, raw) ->
        let n = 6 in
        let pairs =
          List.map
            (fun ((num, den), entries) ->
              (Q.of_ints num den, Array.of_list (List.map B.of_int entries)))
            raw
        in
        let fast = Tables.weighted_sum n pairs in
        let reference =
          List.fold_left
            (fun acc (w, c) -> Tables.add_rat acc (Tables.scale_to w c))
            (Tables.zeros_rat n) pairs
        in
        Array.for_all2 Q.equal fast reference);
  ]

(* ------------------------------------------------------------------ *)
(* Corner cases for the solvers                                        *)
(* ------------------------------------------------------------------ *)

let vid rel pos = Value_fn.id ~rel ~pos

let a_max = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy
let a_avg = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy_full
let a_dup =
  Agg_query.make Aggregate.Has_duplicates
    (Value_fn.custom ~rel:"R" ~descr:"mod2" (fun args ->
         match Aggshap_relational.Value.as_int args.(0) with
         | Some n -> Q.of_int (n mod 2)
         | None -> Q.zero))
    Catalog.q1_sq

let test_empty_database () =
  (* sum_k on an empty database is the single entry [A(∅)] = 0. *)
  let empty = Database.empty in
  List.iter
    (fun sum_k ->
      let v = sum_k empty in
      Alcotest.(check int) "length" 1 (Array.length v);
      Alcotest.(check string) "value" "0" (Q.to_string v.(0)))
    [ Core.Minmax.sum_k a_max; Core.Avg_quantile.sum_k a_avg; Core.Dup.sum_k a_dup ]

let test_single_fact () =
  (* One endogenous fact and nothing else: it can never produce an
     answer (the S-side is missing), so its Shapley value is 0. *)
  let f = Fact.of_ints "R" [ 1; 2 ] in
  let db = Database.of_facts [ f ] in
  Alcotest.(check string) "max" "0" (Q.to_string (Core.Minmax.shapley a_max db f));
  (* With the matching S fact exogenous, the single fact carries the
     whole value. *)
  let db2 = Database.add ~provenance:Database.Exogenous (Fact.of_ints "S" [ 2 ]) db in
  Alcotest.(check string) "max with support" "1"
    (Q.to_string (Core.Minmax.shapley a_max db2 f))

let test_all_exogenous_but_one () =
  (* Everything exogenous except one fact: Shapley = marginal change. *)
  let f = Fact.of_ints "R" [ 5; 2 ] in
  let db =
    Database.of_facts ~provenance:Database.Exogenous
      [ Fact.of_ints "R" [ 1; 2 ]; Fact.of_ints "S" [ 2 ] ]
    |> Database.add f
  in
  (* A({f} ∪ Dx) = max{1,5} = 5; A(Dx) = 1; marginal = 4. *)
  Alcotest.(check string) "marginal" "4" (Q.to_string (Core.Minmax.shapley a_max db f))

let test_irrelevant_relations () =
  (* Facts of relations absent from the query are null players and do
     not perturb the others. *)
  let f = Fact.of_ints "R" [ 3; 2 ] in
  let base =
    Database.of_facts [ f; Fact.of_ints "S" [ 2 ] ]
  in
  let noisy =
    base
    |> Database.add (Fact.of_ints "Noise" [ 1 ])
    |> Database.add (Fact.of_ints "Noise" [ 2 ])
    |> Database.add (Fact.of_ints "R" [ 9 ]) (* wrong arity: can't match *)
  in
  let v_base = Core.Minmax.shapley a_max base f in
  let v_noisy = Core.Minmax.shapley a_max noisy f in
  Alcotest.(check string) "null players don't change the value" (Q.to_string v_base)
    (Q.to_string v_noisy);
  List.iter
    (fun g ->
      if not (Fact.equal g f) && not (String.equal g.Fact.rel "S") then
        Alcotest.(check string)
          ("null player " ^ Fact.to_string g)
          "0"
          (Q.to_string (Core.Minmax.shapley a_max noisy g)))
    (Database.endogenous noisy)

let test_exogenous_only_game () =
  (* No endogenous facts: there is no game; sum_k has a single entry
     A(Dˣ). *)
  let db =
    Database.of_facts ~provenance:Database.Exogenous
      [ Fact.of_ints "R" [ 7; 2 ]; Fact.of_ints "S" [ 2 ] ]
  in
  let v = Core.Minmax.sum_k a_max db in
  Alcotest.(check int) "length" 1 (Array.length v);
  Alcotest.(check string) "value" "7" (Q.to_string v.(0))

let test_solver_rejects_non_endogenous () =
  let f = Fact.of_ints "R" [ 1; 2 ] in
  let db = Database.of_facts ~provenance:Database.Exogenous [ f ] in
  Alcotest.(check bool) "raises" true
    (try ignore (Core.Minmax.shapley a_max db f); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "raises on absent fact" true
    (try ignore (Core.Minmax.shapley a_max db (Fact.of_ints "R" [ 9; 9 ])); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Shapley-axiom invariants per frontier DP family, on the corpus      *)
(* ------------------------------------------------------------------ *)

module CheckTrial = Aggshap_check.Trial
module CheckOracle = Aggshap_check.Oracle
module CheckFuzz = Aggshap_check.Fuzz
module Generate = Aggshap_workload.Generate

let corpus_seeds =
  lazy
    (let ic = open_in "fuzz.corpus" in
     let n = in_channel_length ic in
     let contents = really_input_string ic n in
     close_in ic;
     CheckFuzz.parse_corpus contents)

(* One representative query per frontier class, each within the family's
   frontier, with a τ localized at a free-variable position. The oracle
   checks efficiency (Σφ = v(N) − v(∅)), null player, and symmetry —
   plus full agreement with naive enumeration — per corpus seed. *)
let invariant_families =
  [ ("sum on q_exists", Aggregate.Sum, Catalog.q_exists, CheckTrial.Id ("R", 0));
    ("count on q_exists", Aggregate.Count, Catalog.q_exists, CheckTrial.Const ("R", Q.one));
    ("count-distinct on q_xyy", Aggregate.Count_distinct, Catalog.q_xyy, CheckTrial.Id ("R", 0));
    ("min on q_xyy", Aggregate.Min, Catalog.q_xyy, CheckTrial.Id ("R", 0));
    ("max on q_xyy", Aggregate.Max, Catalog.q_xyy, CheckTrial.Relu ("R", 0));
    ("avg on q_xyy_full", Aggregate.Avg, Catalog.q_xyy_full, CheckTrial.Id ("R", 0));
    ("median on q_xyy_full", Aggregate.Median, Catalog.q_xyy_full, CheckTrial.Id ("R", 1));
    ( "quantile on q_xyy_full",
      Aggregate.Quantile (Q.of_ints 1 4),
      Catalog.q_xyy_full,
      CheckTrial.Id ("R", 0) );
    ( "has-duplicates on q1_sq",
      Aggregate.Has_duplicates,
      Catalog.q1_sq,
      CheckTrial.Gt ("R", 0, Q.zero) );
  ]

let invariant_db_config = { Generate.tuples_per_relation = 3; domain = 3; exo_fraction = 0.25 }

let invariant_case (name, alpha, query, tau) =
  Alcotest.test_case name `Slow (fun () ->
      Alcotest.(check bool) "family query is within its frontier" true
        (Core.Solver.within_frontier alpha query);
      let seeds = List.filteri (fun i _ -> i < 25) (Lazy.force corpus_seeds) in
      List.iter
        (fun seed ->
          let db = Generate.random_database ~seed ~config:invariant_db_config query in
          let trial = { CheckTrial.seed; query; db; alpha; tau } in
          match CheckOracle.run trial with
          | None -> ()
          | Some f ->
            Alcotest.failf "%s, corpus seed %d: %s" name seed
              (CheckOracle.failure_to_string f))
        seeds)

let invariant_tests = List.map invariant_case invariant_families

(* The same corpus replay with the RNS/NTT convolution tier forced on
   every call (threshold 0 bypasses the dispatch cost model): the
   fuzz-sized tables would never reach the tier under the tuned
   threshold, so this is the differential campaign that pins the
   transform + CRT reconstruction against the naive oracle. *)
let ntt_forced_invariant_case (name, alpha, query, tau) =
  Alcotest.test_case (name ^ " [NTT forced]") `Slow (fun () ->
      let saved = !Tables.ntt_threshold in
      Tables.ntt_threshold := 0;
      Fun.protect
        ~finally:(fun () -> Tables.ntt_threshold := saved)
        (fun () ->
          let seeds = List.filteri (fun i _ -> i < 10) (Lazy.force corpus_seeds) in
          List.iter
            (fun seed ->
              let db = Generate.random_database ~seed ~config:invariant_db_config query in
              let trial = { CheckTrial.seed; query; db; alpha; tau } in
              match CheckOracle.run trial with
              | None -> ()
              | Some f ->
                Alcotest.failf "%s [NTT forced], corpus seed %d: %s" name seed
                  (CheckOracle.failure_to_string f))
            seeds))

let ntt_forced_invariant_tests =
  List.map ntt_forced_invariant_case
    (List.filteri (fun i _ -> i mod 3 = 0) invariant_families)

(* The same corpus replay with the legacy evaluation stack forced on:
   the backtracking scan join instead of compiled plans, the rescanning
   partition instead of the index walk, no partition cache, and the
   uncapped answer-count merge. It pins the entire pre-index leaf
   construction surface against the naive oracle — the mirror image of
   the default replay above, which exercises the indexed stack. *)
let legacy_forced_invariant_case (name, alpha, query, tau) =
  Alcotest.test_case (name ^ " [legacy eval]") `Slow (fun () ->
      Plan.enabled := false;
      Fun.protect
        ~finally:(fun () -> Plan.enabled := true)
        (fun () ->
          let seeds = List.filteri (fun i _ -> i < 10) (Lazy.force corpus_seeds) in
          List.iter
            (fun seed ->
              let db = Generate.random_database ~seed ~config:invariant_db_config query in
              let trial = { CheckTrial.seed; query; db; alpha; tau } in
              match CheckOracle.run trial with
              | None -> ()
              | Some f ->
                Alcotest.failf "%s [legacy eval], corpus seed %d: %s" name seed
                  (CheckOracle.failure_to_string f))
            seeds))

let legacy_forced_invariant_tests =
  List.map legacy_forced_invariant_case
    (List.filteri (fun i _ -> i mod 3 = 1) invariant_families)

let () =
  Alcotest.run "props"
    [ ("bag properties", bag_props);
      ("table properties", tables_props);
      ("frontier DP invariants (fuzz corpus)", invariant_tests);
      ("frontier DP invariants, NTT tier forced (fuzz corpus)", ntt_forced_invariant_tests);
      ( "frontier DP invariants, legacy evaluator forced (fuzz corpus)",
        legacy_forced_invariant_tests );
      ( "solver corner cases",
        [ Alcotest.test_case "empty database" `Quick test_empty_database;
          Alcotest.test_case "single fact" `Quick test_single_fact;
          Alcotest.test_case "all exogenous but one" `Quick test_all_exogenous_but_one;
          Alcotest.test_case "irrelevant relations" `Quick test_irrelevant_relations;
          Alcotest.test_case "exogenous-only database" `Quick test_exogenous_only_game;
          Alcotest.test_case "non-endogenous facts rejected" `Quick
            test_solver_rejects_non_endogenous;
        ] );
    ]
