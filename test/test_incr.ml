(* The incremental maintenance engine: session results must be
   bit-identical to from-scratch batch solves after every update, the
   persistent memo must refuse to serve tables stamped for a different
   (aggregate, τ, query), and the session's own argument checks must
   fire. *)

module Q = Aggshap_arith.Rational
module Fact = Aggshap_relational.Fact
module Database = Aggshap_relational.Database
module Parser = Aggshap_cq.Parser
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Batch = Aggshap_core.Batch
module Solver = Aggshap_core.Solver
module Session = Aggshap_incr.Session
module Update = Aggshap_incr.Update
module Script = Aggshap_incr.Script

let query s =
  match Parser.parse_query s with Ok q -> q | Error m -> Alcotest.fail m

let db s =
  match Parser.parse_database s with Ok d -> d | Error m -> Alcotest.fail m

let fact s =
  match Parser.parse_fact s with Ok (f, _) -> f | Error m -> Alcotest.fail m

let results_testable =
  Alcotest.testable
    (fun ppf rs ->
      Format.fprintf ppf "[%s]"
        (String.concat "; "
           (List.map (fun (f, v) -> Fact.to_string f ^ "=" ^ Q.to_string v) rs)))
    (List.equal (fun (f1, v1) (f2, v2) -> Fact.equal f1 f2 && Q.equal v1 v2))

let q_rs = query "Q(x) <- R(x, y), S(y)"

let db0 =
  db "R(1, 10)\nR(2, 10)\nR(3, 20)\nS(10)\nS(20) @exo"

(* ------------------------------------------------------------------ *)
(* the memo's τ contract                                               *)
(* ------------------------------------------------------------------ *)

(* DP tables are keyed on (sub-query, block fingerprint) — τ is outside
   the key, so a memo created under one τ must never be consulted under
   another. The fingerprint stamp enforces this at the API boundary. *)
let test_memo_refuses_other_tau () =
  let a1 = Agg_query.make Aggregate.Sum (Value_fn.const ~rel:"R" Q.one) q_rs in
  let a2 = Agg_query.make Aggregate.Sum (Value_fn.id ~rel:"R" ~pos:1) q_rs in
  let memo = Batch.create_memo a1 in
  let r1, _ = Batch.shapley_all ~jobs:1 ~memo a1 db0 in
  let fresh, _ = Batch.shapley_all ~jobs:1 a1 db0 in
  Alcotest.check results_testable "memo run matches fresh run" fresh r1;
  Alcotest.check_raises "τ changed: memo refused"
    (Invalid_argument
       "Batch: memo was created for a different (aggregate, tau, query); \
        create a fresh one (tau is outside the DP-table cache key)")
    (fun () -> ignore (Batch.shapley_all ~jobs:1 ~memo a2 db0))

let test_memo_refuses_other_aggregate_and_query () =
  let a1 = Agg_query.make Aggregate.Sum (Value_fn.const ~rel:"R" Q.one) q_rs in
  let memo = Batch.create_memo a1 in
  let a_count = Agg_query.make Aggregate.Count (Value_fn.const ~rel:"R" Q.one) q_rs in
  let q' = query "Q(x) <- R(x, y)" in
  let a_q' = Agg_query.make Aggregate.Sum (Value_fn.const ~rel:"R" Q.one) q' in
  List.iter
    (fun a ->
      match Batch.shapley_all ~jobs:1 ~memo a db0 with
      | _ -> Alcotest.fail "memo accepted a mismatched query"
      | exception Invalid_argument _ -> ())
    [ a_count; a_q' ]

(* Database updates, by contrast, need no flush: changed blocks change
   their content fingerprint, so a memo stays valid across them. *)
let test_memo_survives_database_updates () =
  let a = Agg_query.make Aggregate.Max (Value_fn.id ~rel:"R" ~pos:1) q_rs in
  let memo = Batch.create_memo a in
  let check db =
    let with_memo, _ = Batch.shapley_all ~jobs:1 ~memo a db in
    let fresh, _ = Batch.shapley_all ~jobs:1 a db in
    Alcotest.check results_testable "memo run matches fresh run" fresh with_memo
  in
  check db0;
  check (Database.add (fact "R(4, 30)") db0);
  check (Database.remove (fact "R(1, 10)") db0)

(* ------------------------------------------------------------------ *)
(* session argument checks                                             *)
(* ------------------------------------------------------------------ *)

let test_delete_absent_raises () =
  let a = Agg_query.make Aggregate.Sum (Value_fn.const ~rel:"R" Q.one) q_rs in
  let session = Session.open_ ~jobs:1 a db0 in
  Alcotest.check_raises "absent delete refused"
    (Invalid_argument "Incr.Session: delete of absent fact R(9, 9)")
    (fun () -> Session.apply session (Update.Delete (fact "R(9, 9)")))

let test_open_outside_frontier_raises () =
  let q = query "Q() <- R(x), S(x, y), T(y)" in
  let a = Agg_query.make Aggregate.Count (Value_fn.const ~rel:"R" Q.one) q in
  assert (not (Solver.within_frontier Aggregate.Count q));
  match Session.open_ ~jobs:1 a Database.empty with
  | _ -> Alcotest.fail "session opened outside the frontier"
  | exception Invalid_argument _ -> ()

let test_set_tau_foreign_relation_raises () =
  let a = Agg_query.make Aggregate.Sum (Value_fn.const ~rel:"R" Q.one) q_rs in
  let session = Session.open_ ~jobs:1 a db0 in
  match Session.apply session (Update.Set_tau (Value_fn.const ~rel:"T" Q.one, "const:T:1")) with
  | () -> Alcotest.fail "set_tau accepted a relation outside the query"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* session vs batch, all six DP families                               *)
(* ------------------------------------------------------------------ *)

(* A fixed handcrafted update sequence replayed per aggregate: the
   session must agree with a from-scratch batch solve (independently
   tracked database and τ) after the initial build and every step.
   The Boolean-head query is sq-hierarchical, inside every aggregate's
   frontier, so one instance covers all six DP families. *)
let q_bool = query "Q() <- R(x, y), S(y)"
let script_ops =
  [ Update.Insert (fact "R(4, 10)", Database.Endogenous);
    Update.Insert (fact "S(30)", Database.Exogenous);
    Update.Delete (fact "R(3, 20)");
    Update.Set_tau (Value_fn.const ~rel:"R" (Q.of_int 3), "const:R:3");
    Update.Insert (fact "R(5, 30)", Database.Endogenous);
    Update.Delete (fact "R(2, 10)");
    Update.Set_tau (Value_fn.const ~rel:"R" Q.minus_one, "const:R:-1") ]

let test_session_matches_batch alpha () =
  let tau0 = Value_fn.const ~rel:"R" Q.one in
  let a0 = Agg_query.make alpha tau0 q_bool in
  assert (Solver.within_frontier alpha q_bool);
  let session = Session.open_ ~jobs:1 a0 db0 in
  let a = ref a0 and db = ref db0 in
  let check step =
    let expected, _ = Batch.shapley_all ~jobs:1 !a !db in
    Alcotest.check results_testable
      (Printf.sprintf "%s, step %d" (Aggregate.to_string alpha) step)
      expected
      (Session.shapley_all session)
  in
  check 0;
  List.iteri
    (fun i op ->
      (match op with
       | Update.Insert (f, prov) -> db := Database.add ~provenance:prov f !db
       | Update.Delete f -> db := Database.remove f !db
       | Update.Set_tau (tau, _) -> a := Agg_query.make alpha tau q_bool);
      Session.apply session op;
      check (i + 1))
    script_ops

(* The Linear engine's economy: after updates that touch one answer's
   block, untouched membership games are served from cache. *)
let test_linear_engine_reuses () =
  let a = Agg_query.make Aggregate.Sum (Value_fn.const ~rel:"R" Q.one) q_rs in
  let session = Session.open_ ~jobs:1 a db0 in
  ignore (Session.shapley_all session);
  Session.apply session (Update.Insert (fact "R(4, 10)", Database.Endogenous));
  ignore (Session.shapley_all session);
  let stats = Session.stats session in
  Alcotest.(check bool) "some games were reused" true (stats.Session.games_reused > 0);
  (match Session.reuse_ratio stats with
   | Some r -> Alcotest.(check bool) "reuse ratio positive" true (r > 0.)
   | None -> Alcotest.fail "no games read");
  Alcotest.(check int) "one update applied" 1 stats.Session.steps;
  Alcotest.(check int) "no set_tau flushes" 0 stats.Session.full_recomputes

(* Round-trip of the textual script format behind shapctl session. *)
let test_script_round_trip () =
  let text = Script.to_string script_ops in
  match Script.parse text with
  | Error m -> Alcotest.fail m
  | Ok parsed ->
    Alcotest.(check int) "same length" (List.length script_ops) (List.length parsed);
    List.iter2
      (fun expected (_, got) ->
        Alcotest.(check string) "op round-trips" (Update.to_string expected)
          (Update.to_string got))
      script_ops parsed

let test_script_errors_carry_line_numbers () =
  (match Script.parse "insert R(1, 2)\n\nfrobnicate R(1)" with
   | Ok _ -> Alcotest.fail "malformed op accepted"
   | Error m ->
     Alcotest.(check bool) ("mentions line 3: " ^ m) true
       (String.length m >= 7 && String.sub m 0 7 = "line 3:"));
  match Script.parse "delete R(1, 2) @exo" with
  | Ok _ -> Alcotest.fail "delete with provenance marker accepted"
  | Error m ->
    Alcotest.(check bool) ("mentions line 1: " ^ m) true
      (String.length m >= 7 && String.sub m 0 7 = "line 1:")

let () =
  Alcotest.run "incr"
    [ ( "memo contract",
        [ Alcotest.test_case "refuses other tau" `Quick test_memo_refuses_other_tau;
          Alcotest.test_case "refuses other aggregate/query" `Quick
            test_memo_refuses_other_aggregate_and_query;
          Alcotest.test_case "survives database updates" `Quick
            test_memo_survives_database_updates;
        ] );
      ( "session checks",
        [ Alcotest.test_case "delete of absent fact" `Quick test_delete_absent_raises;
          Alcotest.test_case "outside frontier" `Quick test_open_outside_frontier_raises;
          Alcotest.test_case "set_tau foreign relation" `Quick
            test_set_tau_foreign_relation_raises;
        ] );
      ( "session vs batch",
        List.map
          (fun alpha ->
            Alcotest.test_case (Aggregate.to_string alpha) `Quick
              (test_session_matches_batch alpha))
          [ Aggregate.Sum; Aggregate.Count; Aggregate.Count_distinct; Aggregate.Min;
            Aggregate.Max; Aggregate.Avg; Aggregate.Median;
            Aggregate.Quantile (Q.of_string "1/3"); Aggregate.Has_duplicates ] );
      ( "engine economy",
        [ Alcotest.test_case "linear engine reuses games" `Quick
            test_linear_engine_reuses ] );
      ( "scripts",
        [ Alcotest.test_case "round trip" `Quick test_script_round_trip;
          Alcotest.test_case "errors carry line numbers" `Quick
            test_script_errors_carry_line_numbers;
        ] );
    ]
