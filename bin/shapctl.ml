(* shapctl — command-line front end.

   Subcommands:
     classify  classify a CQ into the hierarchy classes and report the
               tractability frontier for every aggregate function
     explain   explain how one aggregate query would be solved: the
               classification chain, the selected algorithm, and the
               engine's decomposition tree
     eval      evaluate an aggregate query on a database file
     solve     compute Shapley values (all endogenous facts, or one)
     session   incremental maintenance: replay an update script through
               a live solver session, printing values after every step
     serve     run the multi-tenant session server on a Unix socket
     client    drive a running server (one request per invocation, or
               a raw newline-delimited JSON stream)
     fuzz      differential-testing oracle: random AggCQ trials
               cross-validated against naive enumeration

   All orchestration lives in Aggshap_api.Api (shared with the server);
   this file is argument parsing and printing.

   The value function is given as COLON-separated spec:
     id:REL:POS | relu:REL:POS | gt:REL:POS:BOUND | const:REL:VALUE *)

module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Aggregate = Aggshap_agg.Aggregate
module Agg_query = Aggshap_agg.Agg_query
module Solver = Aggshap_core.Solver
module Engine = Aggshap_core.Engine
module Monte_carlo = Aggshap_core.Monte_carlo
module Api = Aggshap_api.Api
module Server = Aggshap_server.Server
module Client = Aggshap_server.Client
module Protocol = Aggshap_server.Protocol

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("shapctl: " ^ s); exit 1) fmt

let or_die = function Ok v -> v | Error msg -> die "%s" msg

let parse_query_arg s = or_die (Api.parse_query s)
let read_database path = or_die (Api.load_database path)

let warn_schema q db =
  List.iter
    (fun m -> Printf.eprintf "shapctl: warning: %s\n" m)
    (Api.schema_warnings q db)

let make_agg_query agg_s tau_s query = or_die (Api.make_agg_query ~agg:agg_s ~tau:tau_s query)

let check_jobs = function
  | Some j when j < 1 -> die "--jobs must be at least 1 (got %d)" j
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* classify                                                            *)
(* ------------------------------------------------------------------ *)

let run_classify query_s =
  let q = parse_query_arg query_s in
  let cls, rows = Api.classify q in
  Printf.printf "query: %s\n" (Cq.to_string q);
  Printf.printf "class: %s\n\n" (Hierarchy.cls_to_string cls);
  Printf.printf "%-18s %-22s %s\n" "aggregate" "frontier" "tractable here?";
  List.iter
    (fun { Api.alpha; frontier; tractable } ->
      Printf.printf "%-18s %-22s %s\n"
        (Aggregate.to_string alpha)
        (Hierarchy.cls_to_string frontier)
        (if tractable then "yes (polynomial)" else "no (#P-hard)"))
    rows;
  0

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let check_kc_budget = function
  | Some b when b < 1 -> die "--kc-node-budget must be at least 1 (got %d)" b
  | _ -> ()

let run_explain query_s agg_s tau_s fallback_s db_path kc_node_budget json =
  let q = parse_query_arg query_s in
  let a = make_agg_query agg_s tau_s q in
  let fallback, _mc_seed = or_die (Api.parse_fallback fallback_s) in
  check_kc_budget kc_node_budget;
  (* An optional database feeds the planner's cost model; without one
     the plan still names the route but shows no cost estimates. *)
  let db = Option.map read_database db_path in
  let ex = Api.explain ~fallback ?db ?kc_node_budget a in
  if json then begin
    (* [to_string] is already newline-terminated. *)
    print_string (Aggshap_json.Json.to_string (Api.explanation_to_json a ex));
    0
  end
  else begin
    Printf.printf "query: %s\n" (Cq.to_string q);
    Printf.printf "aggregate: %s\n\n" (Aggregate.to_string a.Agg_query.alpha);
    Printf.printf "hierarchy chain (each class contains the next):\n";
    List.iter
      (fun (name, holds) ->
        Printf.printf "  %-20s %s\n" name (if holds then "yes" else "no"))
      ex.Api.chain;
    Printf.printf "class: %s\n\n" (Hierarchy.cls_to_string ex.Api.cls);
    Printf.printf "frontier of %s: %s\n"
      (Aggregate.to_string a.Agg_query.alpha)
      (Hierarchy.cls_to_string ex.Api.frontier);
    Printf.printf "within frontier: %s\n"
      (if ex.Api.within_frontier then "yes (polynomial)" else "no (#P-hard)");
    Printf.printf "algorithm: %s\n\n" ex.Api.algorithm;
    Printf.printf "solve plan (* = chosen):\n";
    List.iter (fun line -> Printf.printf "  %s\n" line) (Api.plan_lines ex);
    print_newline ();
    Printf.printf "engine decomposition:\n";
    Format.printf "%a@?" Engine.pp_shape (Engine.shape q);
    0
  end

(* ------------------------------------------------------------------ *)
(* eval                                                                *)
(* ------------------------------------------------------------------ *)

let run_eval query_s db_path agg_s tau_s =
  let q = parse_query_arg query_s in
  let db = read_database db_path in
  warn_schema q db;
  let a = make_agg_query agg_s tau_s q in
  let value = or_die (Api.eval a db) in
  Printf.printf "%s = %s (~ %g)\n" agg_s (Q.to_string value) (Q.to_float value);
  0

(* ------------------------------------------------------------------ *)
(* solve                                                               *)
(* ------------------------------------------------------------------ *)

(* --stats: per-kernel counter report after a solve. The counters are
   Atomic.t, so the totals are exact whatever --jobs says. *)
let print_kernel_stats () =
  let bs = Aggshap_arith.Bigint.stats () in
  let ts = Aggshap_core.Tables.stats () in
  let es = Engine.stats () in
  let ds = Aggshap_relational.Database.stats () in
  let ps = Aggshap_cq.Plan.stats () in
  let ks = Aggshap_lineage.Ddnnf.stats () in
  Printf.printf "kernel counters:\n";
  List.iter
    (fun (name, v) -> Printf.printf "  %-18s %d\n" name v)
    [ ("mul_schoolbook", bs.Aggshap_arith.Bigint.mul_schoolbook);
      ("mul_karatsuba", bs.Aggshap_arith.Bigint.mul_karatsuba);
      ("mul_small", bs.Aggshap_arith.Bigint.mul_small);
      ("sqr", bs.Aggshap_arith.Bigint.sqr);
      ("divmod", bs.Aggshap_arith.Bigint.divmod);
      ("gcd", bs.Aggshap_arith.Bigint.gcd);
      ("acc_mul", bs.Aggshap_arith.Bigint.acc_mul);
      ("promotions", bs.Aggshap_arith.Bigint.promotions);
      ("demotions", bs.Aggshap_arith.Bigint.demotions);
      ("convolve", ts.Aggshap_core.Tables.convolve);
      ("convolve_small", ts.Aggshap_core.Tables.convolve_small);
      ("convolve_ntt", ts.Aggshap_core.Tables.convolve_ntt);
      ("convolve_rat", ts.Aggshap_core.Tables.convolve_rat);
      ("tree_folds", ts.Aggshap_core.Tables.tree_folds);
      ("weighted_sums", ts.Aggshap_core.Tables.weighted_sums);
      ("engine_nodes", es.Engine.nodes);
      ("engine_leaves", es.Engine.leaves);
      ("engine_merges", es.Engine.merges);
      ("engine_combines", es.Engine.combines);
      ("engine_par_merges", es.Engine.parallel_merges);
      ("plan_compiles", ps.Aggshap_cq.Plan.plan_compiles);
      ("index_builds", ds.Aggshap_relational.Database.index_builds);
      ("index_probes", ds.Aggshap_relational.Database.index_probes);
      ("rel_scans", ds.Aggshap_relational.Database.rel_scans);
      ("ddnnf_nodes", ks.Aggshap_lineage.Ddnnf.nodes);
      ("ddnnf_cache_hits", ks.Aggshap_lineage.Ddnnf.cache_hits);
      ("ddnnf_cache_misses", ks.Aggshap_lineage.Ddnnf.cache_misses);
      ("ddnnf_compiles", ks.Aggshap_lineage.Ddnnf.compiles);
      ("ddnnf_wmc_passes", ks.Aggshap_lineage.Ddnnf.wmc_passes);
      ("kc_budget_aborts", ks.Aggshap_lineage.Ddnnf.budget_aborts) ];
  if ks.Aggshap_lineage.Ddnnf.compiles > 0 then
    Printf.printf "  %-18s compile %.6fs, wmc %.6fs\n" "ddnnf_time"
      ks.Aggshap_lineage.Ddnnf.compile_s ks.Aggshap_lineage.Ddnnf.wmc_s

let run_solve query_s db_path agg_s tau_s fact_s fallback_s score_s jobs block_jobs cache
    kc_node_budget stats =
  let q = parse_query_arg query_s in
  let db = read_database db_path in
  warn_schema q db;
  let a = make_agg_query agg_s tau_s q in
  let fallback, mc_seed = or_die (Api.parse_fallback fallback_s) in
  let score = or_die (Api.parse_score score_s) in
  check_jobs jobs;
  check_kc_budget kc_node_budget;
  (match block_jobs with
   | Some b when b < 1 -> die "--block-jobs must be at least 1 (got %d)" b
   | other -> or_die (Api.set_block_jobs other));
  if stats then begin
    Aggshap_arith.Bigint.reset_stats ();
    Aggshap_core.Tables.reset_stats ();
    Engine.reset_stats ();
    Aggshap_relational.Database.reset_stats ();
    Aggshap_cq.Plan.reset_stats ();
    Aggshap_lineage.Ddnnf.reset_stats ()
  end;
  let result =
    match (score, fact_s) with
    | Api.Banzhaf, fact -> or_die (Api.banzhaf_all ?fact a db)
    | Api.Shapley, Some fact_s ->
      or_die (Api.shapley_fact ~fallback ?mc_seed ?kc_node_budget a db fact_s)
    | Api.Shapley, None ->
      or_die (Api.shapley_all ~fallback ?mc_seed ?jobs ~cache ?kc_node_budget a db)
  in
  (match result.Api.report with
   | Some report ->
     Printf.printf "class: %s; algorithm: %s\n"
       (Hierarchy.cls_to_string report.Solver.cls)
       report.Solver.algorithm
   | None -> ());
  List.iter
    (fun (fact, outcome) ->
      match (score, outcome) with
      | Api.Banzhaf, Solver.Exact v ->
        Printf.printf "%-30s %s\n" (Fact.to_string fact) (Q.to_string v)
      | _, Solver.Exact v ->
        Printf.printf "%-30s %s (~ %g)\n" (Fact.to_string fact) (Q.to_string v)
          (Q.to_float v)
      | _, Solver.Estimate e ->
        Printf.printf "%-30s %.6f ± %.6f (%d samples)\n" (Fact.to_string fact)
          e.Monte_carlo.mean e.Monte_carlo.std_error e.Monte_carlo.samples)
    result.Api.values;
  if stats then print_kernel_stats ();
  0

(* ------------------------------------------------------------------ *)
(* session                                                             *)
(* ------------------------------------------------------------------ *)

let read_file what path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error msg -> die "cannot read %s: %s" what msg

let run_session query_s db_path agg_s tau_s updates_path jobs stats =
  let module Session = Aggshap_incr.Session in
  let module Script = Aggshap_incr.Script in
  let module Update = Aggshap_incr.Update in
  let q = parse_query_arg query_s in
  let db = read_database db_path in
  warn_schema q db;
  let a = make_agg_query agg_s tau_s q in
  check_jobs jobs;
  let ops =
    match Script.parse (read_file "update script" updates_path) with
    | Ok ops -> ops
    | Error msg -> die "%s: %s" updates_path msg
  in
  let session =
    match Api.trap (fun () -> Session.open_ ?jobs a db) with
    | Ok s -> s
    | Error msg -> die "%s" msg
  in
  let print_step label =
    Printf.printf "step %s\n" label;
    match Session.shapley_all session with
    | [] -> print_endline "  (no endogenous facts)"
    | results ->
      List.iter
        (fun (f, v) ->
          Printf.printf "  %-28s %s\n" (Fact.to_string f) (Q.to_string v))
        results
  in
  print_step "0 (initial)";
  List.iteri
    (fun i (line, op) ->
      (match Api.trap (fun () -> Session.apply session op) with
       | Ok () -> ()
       | Error msg -> die "%s: line %d: %s" updates_path line msg);
      print_step (Printf.sprintf "%d (%s)" (i + 1) (Update.to_string op)))
    ops;
  if stats then print_endline (Session.stats_to_string (Session.stats session));
  0

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let run_serve socket max_sessions state_dir jobs quiet =
  check_jobs jobs;
  if max_sessions < 1 then die "--max-sessions must be at least 1 (got %d)" max_sessions;
  let log =
    if quiet then fun _ -> ()
    else fun msg -> Printf.eprintf "shapctl serve: %s\n%!" msg
  in
  match
    Server.run
      { Server.socket; max_sessions; state_dir; default_jobs = jobs; log }
  with
  | Ok () -> 0
  | Error msg -> die "%s" msg

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

let need_session action = function
  | Some s -> s
  | None -> die "client %s needs a SESSION argument" action

let client_error = function
  | Protocol.Error { line = Some n; message } -> die "server error (line %d): %s" n message
  | Protocol.Error { line = None; message } -> die "server error: %s" message
  | _ -> die "unexpected response from server"

let run_client action session socket query_s db_path agg_s tau_s fallback_s jobs
    updates_path op_s kc_node_budget retry_ms =
  check_jobs jobs;
  check_kc_budget kc_node_budget;
  let one req print =
    or_die
      (Client.with_connection ~retry_ms socket (fun c ->
           match Client.request c req with
           | Ok r -> Ok (print r)
           | Error msg -> Error msg))
  in
  match action with
  | "open" ->
    let session = need_session action session in
    let query = match query_s with Some q -> q | None -> die "client open needs --query" in
    let db_path = match db_path with Some d -> d | None -> die "client open needs --database" in
    let db = read_file "database" db_path in
    let spec = { Api.query; db; agg = agg_s; tau = tau_s; jobs } in
    one (Protocol.Open { session; spec }) (function
      | Protocol.Opened { session; facts } ->
        Printf.printf "opened %s (%d facts)\n" session facts
      | r -> client_error r);
    0
  | "solve" ->
    let session = need_session action session in
    one (Protocol.Solve { session }) (function
      | Protocol.Solved { values; _ } ->
        if values = [] then print_endline "(no endogenous facts)"
        else List.iter (fun (fact, v) -> Printf.printf "%-28s %s\n" fact v) values
      | r -> client_error r);
    0
  | "solve-query" ->
    (* Stateless one-shot solve: no session, so the exact fallback
       tiers work outside the frontier too. *)
    let query = match query_s with Some q -> q | None -> die "client solve-query needs --query" in
    let db_path = match db_path with Some d -> d | None -> die "client solve-query needs --database" in
    let db = read_file "database" db_path in
    one
      (Protocol.Solve_query
         { query; db; agg = agg_s; tau = tau_s; fallback = Some fallback_s;
           kc_node_budget })
      (function
      | Protocol.Query_solved { algorithm; values } ->
        Printf.printf "algorithm: %s\n" algorithm;
        if values = [] then print_endline "(no endogenous facts)"
        else List.iter (fun (fact, v) -> Printf.printf "%-28s %s\n" fact v) values
      | r -> client_error r);
    0
  | "update" ->
    let session = need_session action session in
    let script =
      match (updates_path, op_s) with
      | Some path, None -> read_file "update script" path
      | None, Some op -> op
      | Some _, Some _ -> die "client update takes --updates or --op, not both"
      | None, None -> die "client update needs --updates FILE or --op LINE"
    in
    one (Protocol.Update { session; script }) (function
      | Protocol.Updated { applied; _ } ->
        Printf.printf "applied %d update%s\n" applied (if applied = 1 then "" else "s")
      | r -> client_error r);
    0
  | "set-tau" ->
    let session = need_session action session in
    let tau = match tau_s with Some t -> t | None -> die "client set-tau needs --tau" in
    one (Protocol.Set_tau { session; tau }) (function
      | Protocol.Tau_set _ -> print_endline "tau set"
      | r -> client_error r);
    0
  | "explain" ->
    let session = need_session action session in
    one (Protocol.Explain { session }) (function
      | Protocol.Explained { cls; frontier; within_frontier; algorithm; plan; _ } ->
        Printf.printf "class: %s\n" cls;
        Printf.printf "frontier: %s\n" frontier;
        Printf.printf "within frontier: %s\n"
          (if within_frontier then "yes (polynomial)" else "no (#P-hard)");
        Printf.printf "algorithm: %s\n" algorithm;
        Printf.printf "plan (* = chosen):\n";
        List.iter (fun line -> Printf.printf "  %s\n" line) plan
      | r -> client_error r);
    0
  | "stats" ->
    one (Protocol.Stats { session }) (function
      | Protocol.Session_stats { session; stats } ->
        Printf.printf
          "session %s: steps=%d games=%d computed/%d reused flushes=%d facts=%d \
           endogenous=%d\n"
          session stats.Protocol.steps stats.Protocol.games_computed
          stats.Protocol.games_reused stats.Protocol.full_recomputes
          stats.Protocol.facts stats.Protocol.endogenous
      | Protocol.Server_stats { sessions; requests; evictions; restores } ->
        List.iter
          (fun (name, live) ->
            Printf.printf "session %s (%s)\n" name (if live then "live" else "evicted"))
          sessions;
        Printf.printf "requests=%d evictions=%d restores=%d\n" requests evictions
          restores
      | r -> client_error r);
    0
  | "close" ->
    let session = need_session action session in
    one (Protocol.Close { session }) (function
      | Protocol.Closed { session } -> Printf.printf "closed %s\n" session
      | r -> client_error r);
    0
  | "ping" ->
    one Protocol.Ping (function
      | Protocol.Pong -> print_endline "ok"
      | r -> client_error r);
    0
  | "shutdown" ->
    one Protocol.Shutdown (function
      | Protocol.Shutting_down -> print_endline "server shutting down"
      | r -> client_error r);
    0
  | "raw" ->
    (* One raw protocol line per non-blank stdin line; replies are
       printed verbatim, in order. *)
    let text = In_channel.input_all stdin in
    let lines = Aggshap_incr.Script.lines text in
    or_die
      (Client.with_connection ~retry_ms socket (fun c ->
           let rec go = function
             | [] -> Ok ()
             | line :: rest ->
               if String.trim line = "" then go rest
               else begin
                 match Client.send_line c line with
                 | Error _ as e -> e
                 | Ok () -> (
                   match Client.recv_line c with
                   | Error _ as e -> e
                   | Ok reply ->
                     print_endline reply;
                     go rest)
               end
           in
           go lines));
    0
  | _ ->
    die
      "unknown client action %S (use open, solve, solve-query, update, set-tau, \
       explain, stats, close, ping, shutdown, or raw)"
      action

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let run_fuzz seed trials max_endo jobs max_failures updates ntt_threshold legacy_eval
    fallback_s verbose =
  if trials < 1 then die "--trials must be at least 1 (got %d)" trials;
  if max_endo < 1 then die "--max-endo must be at least 1 (got %d)" max_endo;
  check_jobs jobs;
  if max_failures < 1 then die "--max-failures must be at least 1 (got %d)" max_failures;
  let kc_always, auto_always =
    match or_die (Api.parse_fallback fallback_s) with
    | `Naive, _ -> (false, false)
    | `Knowledge_compilation, _ -> (true, false)
    | `Auto, _ -> (false, true)
    | (`Monte_carlo _ | `Fail), _ ->
      die "fuzz --fallback takes naive, knowledge-compilation, or auto (got %S)"
        fallback_s
  in
  if kc_always then
    Printf.printf
      "fuzz: knowledge-compilation tier cross-checked on every supported trial\n%!";
  if auto_always then
    Printf.printf
      "fuzz: planner auto mode cross-checked against naive on every trial\n%!";
  (match ntt_threshold with
   | None -> ()
   | Some t ->
     if t < 0 then die "--ntt-threshold must be non-negative (got %d)" t;
     Aggshap_core.Tables.ntt_threshold := t;
     Printf.printf "fuzz: NTT tier %s\n%!"
       (if t = 0 then "forced on every convolution (differential campaign)"
        else Printf.sprintf "threshold set to %d" t));
  if legacy_eval then begin
    Aggshap_cq.Plan.enabled := false;
    Printf.printf
      "fuzz: legacy scan evaluator forced (planner and indexes disabled)\n%!"
  end;
  let module Fuzz = Aggshap_check.Fuzz in
  let module Trial = Aggshap_check.Trial in
  let module Utrial = Aggshap_check.Utrial in
  let module Oracle = Aggshap_check.Oracle in
  let config =
    { Fuzz.seed; trials; max_endo;
      par_jobs = Option.value jobs ~default:Fuzz.default.Fuzz.par_jobs;
      max_failures; kc_always; auto_always }
  in
  if updates then begin
    Printf.printf "fuzz: update sequences, seed=%d trials=%d max-endo=%d\n%!" seed trials
      max_endo;
    let on_trial i t =
      if verbose then Printf.printf "trial %d: %s\n%!" i (Utrial.to_string t)
    in
    let report = Fuzz.run_updates ~on_trial config in
    List.iter
      (fun { Fuzz.utrial; ufailure; ushrunk; ushrunk_failure } ->
        Printf.printf "\nFAILURE on %s\n  %s\n" (Utrial.to_string utrial)
          (Oracle.failure_to_string ufailure);
        Printf.printf "shrunk to %s\n  %s\nreproducer:\n%s" (Utrial.to_string ushrunk)
          (Oracle.failure_to_string ushrunk_failure)
          (Utrial.to_script ushrunk))
      report.Fuzz.ufailures;
    let n_failures = List.length report.Fuzz.ufailures in
    Printf.printf "fuzz: %d trials, %d update steps, %d failure%s\n" report.Fuzz.uran
      report.Fuzz.usteps n_failures
      (if n_failures = 1 then "" else "s");
    if n_failures = 0 then 0 else 1
  end
  else begin
    Printf.printf "fuzz: seed=%d trials=%d max-endo=%d\n%!" seed trials max_endo;
    let on_trial i t = if verbose then Printf.printf "trial %d: %s\n%!" i (Trial.to_string t) in
    let report = Fuzz.run ~on_trial config in
    List.iter
      (fun { Fuzz.trial; failure; shrunk; shrunk_failure } ->
        Printf.printf "\nFAILURE on %s\n  %s\n" (Trial.to_string trial)
          (Oracle.failure_to_string failure);
        Printf.printf "shrunk to %s\n  %s\nreproducer:\n%s" (Trial.to_string shrunk)
          (Oracle.failure_to_string shrunk_failure)
          (Trial.to_script shrunk))
      report.Fuzz.failures;
    let n_failures = List.length report.Fuzz.failures in
    Printf.printf "fuzz: %d trials, %d failure%s\n" report.Fuzz.ran n_failures
      (if n_failures = 1 then "" else "s");
    if n_failures = 0 then 0 else 1
  end

(* ------------------------------------------------------------------ *)
(* cmdliner wiring                                                     *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let query_arg =
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY"
         ~doc:"Conjunctive query, e.g. 'Q(x) <- R(x,y), S(y)'.")

let db_arg =
  Arg.(required & opt (some string) None & info [ "d"; "database" ] ~docv:"FILE"
         ~doc:"Database file: one fact per line, e.g. 'R(1,2)' or 'S(3) @exo'.")

let agg_arg =
  Arg.(value & opt string "count" & info [ "a"; "aggregate" ] ~docv:"AGG"
         ~doc:"Aggregate function: sum, count, count-distinct, min, max, avg, \
               median, quantile:P/Q, has-duplicates.")

let tau_arg =
  Arg.(value & opt (some string) None & info [ "t"; "tau" ] ~docv:"SPEC"
         ~doc:"Value function: id:REL:POS, relu:REL:POS, gt:REL:POS:BOUND, \
               const:REL:VALUE. Defaults to the constant 1.")

let fact_arg =
  Arg.(value & opt (some string) None & info [ "f"; "fact" ] ~docv:"FACT"
         ~doc:"Restrict to one endogenous fact, e.g. 'R(1,2)'.")

let score_arg =
  Arg.(value & opt string "shapley" & info [ "score" ] ~docv:"SCORE"
         ~doc:"Attribution score: shapley (default) or banzhaf.")

let fallback_arg =
  Arg.(value & opt string "naive" & info [ "fallback" ] ~docv:"MODE"
         ~doc:"What to do outside the tractability frontier: auto (the solve \
               planner picks the cheapest applicable exact tier from the \
               database's statistics), naive (exact, exponential), \
               knowledge-compilation (or kc; exact via d-DNNF lineage \
               compilation and weighted model counting), mc:SAMPLES or \
               mc:SAMPLES:SEED (Monte Carlo; a seed makes the estimates \
               reproducible), or fail.")

let kc_budget_arg =
  Arg.(value & opt (some int) None & info [ "kc-node-budget" ] ~docv:"N"
         ~doc:"Cap the knowledge-compilation tier at N d-DNNF decision \
               nodes. A compilation that would exceed the budget aborts \
               mid-solve and the planner falls back to its next choice \
               (counted by kc_budget_aborts in --stats).")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for the all-facts batch (default: the \
               recommended domain count of the machine; 1 disables \
               parallelism). Results are identical for every N.")

let block_jobs_arg =
  Arg.(value & opt (some int) None & info [ "block-jobs" ] ~docv:"N"
         ~doc:"Worker domains for independent root blocks inside one \
               decomposition-engine evaluation (default 1: sequential). \
               Results are identical for every N; composes with --jobs.")

let cache_arg =
  Arg.(value & opt bool true & info [ "cache" ] ~docv:"BOOL"
         ~doc:"Share dynamic-programming tables across the per-fact batch \
               loop (default true). Results are identical either way.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print arithmetic/convolution kernel counters after solving \
               (approximate when --jobs > 1).")

let classify_cmd =
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify a CQ and print its per-aggregate tractability")
    Term.(const run_classify $ query_arg)

let eval_cmd =
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate an aggregate query over a database")
    Term.(const run_eval $ query_arg $ db_arg $ agg_arg $ tau_arg)

let explain_db_arg =
  Arg.(value & opt (some string) None & info [ "d"; "database" ] ~docv:"FILE"
         ~doc:"Optional database file; its segment statistics feed the solve \
               planner's cost model, so the plan shows per-candidate cost \
               estimates.")

let explain_json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Print the explanation as one JSON object (query, aggregate, \
               hierarchy chain, frontier verdict, and the solve plan with \
               per-candidate cost estimates and rejection reasons) instead \
               of text.")

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain how one aggregate query would be solved: the hierarchy \
             classification chain, the aggregate's tractability frontier, \
             the solve plan with per-candidate cost estimates, the selected \
             algorithm, and the decomposition tree the generic engine \
             evaluates.")
    Term.(const run_explain $ query_arg $ agg_arg $ tau_arg $ fallback_arg
          $ explain_db_arg $ kc_budget_arg $ explain_json_arg)

let solve_cmd =
  Cmd.v
    (Cmd.info "solve" ~doc:"Compute Shapley values of endogenous facts")
    Term.(const run_solve $ query_arg $ db_arg $ agg_arg $ tau_arg $ fact_arg $ fallback_arg $ score_arg $ jobs_arg $ block_jobs_arg $ cache_arg $ kc_budget_arg $ stats_arg)

let updates_file_arg =
  Arg.(required & opt (some string) None & info [ "u"; "updates" ] ~docv:"FILE"
         ~doc:"Update script: one operation per line ('insert R(4, 10)', \
               'insert S(30) \\@exo', 'delete R(1, 10)', 'set_tau id:R:0'), \
               $(b,#) comments and blank lines ignored.")

let session_stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print session reuse statistics (games recomputed vs served \
               from cache, DP-table cache hits) after the replay.")

let session_cmd =
  Cmd.v
    (Cmd.info "session"
       ~doc:"Replay an update script through a live incremental solver \
             session, printing exact Shapley values after every step. \
             Values are bit-identical to re-solving from scratch; only \
             the state dirtied by each update is recomputed.")
    Term.(const run_session $ query_arg $ db_arg $ agg_arg $ tau_arg $ updates_file_arg $ jobs_arg $ session_stats_arg)

let socket_arg =
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Path of the server's Unix-domain socket.")

let max_sessions_arg =
  Arg.(value & opt int 16 & info [ "max-sessions" ] ~docv:"N"
         ~doc:"Resident-session capacity (default 16). The least-recently \
               used session beyond it is snapshotted and evicted; evicted \
               sessions are restored transparently on their next request.")

let state_dir_arg =
  Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR"
         ~doc:"Directory for session snapshots (created if absent). \
               Sessions found there are re-registered at startup, so they \
               survive server restarts. Without it, eviction keeps \
               snapshots in memory only.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress lifecycle logging on stderr.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the multi-tenant session server: named incremental solver \
             sessions (one per tenant/database) behind a newline-delimited \
             JSON protocol over a Unix-domain socket, with LRU eviction \
             and snapshot/restore of session state. Answers are \
             bit-identical to 'shapctl solve' and 'shapctl session' on \
             the same inputs.")
    Term.(const run_serve $ socket_arg $ max_sessions_arg $ state_dir_arg $ jobs_arg $ quiet_arg)

let client_action_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ACTION"
         ~doc:"One of open, solve, solve-query, update, set-tau, explain, \
               stats, close, ping, shutdown, raw.")

let client_session_arg =
  Arg.(value & pos 1 (some string) None & info [] ~docv:"SESSION"
         ~doc:"Session (tenant) name; required by every action except \
               solve-query, ping, shutdown, raw, and server-wide stats.")

let client_query_arg =
  Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY"
         ~doc:"Conjunctive query for 'open'.")

let client_db_arg =
  Arg.(value & opt (some string) None & info [ "d"; "database" ] ~docv:"FILE"
         ~doc:"Database file for 'open' (sent to the server as text).")

let client_updates_arg =
  Arg.(value & opt (some string) None & info [ "u"; "updates" ] ~docv:"FILE"
         ~doc:"Update script file for 'update'.")

let client_op_arg =
  Arg.(value & opt (some string) None & info [ "op" ] ~docv:"LINE"
         ~doc:"A single update-script line for 'update', e.g. 'insert R(4, 7)'.")

let retry_ms_arg =
  Arg.(value & opt int 5000 & info [ "retry-ms" ] ~docv:"MS"
         ~doc:"How long to keep retrying the initial connection while the \
               server is still starting (default 5000).")

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:"Drive a running 'shapctl serve' instance: one request per \
             invocation (open/solve/solve-query/update/set-tau/explain/\
             stats/close/ping/shutdown), or 'raw' to stream \
             newline-delimited JSON requests from stdin and print the \
             raw replies. solve-query is a stateless one-shot solve \
             (--fallback selects the exact tier outside the frontier; \
             Monte Carlo is rejected over the wire).")
    Term.(const run_client $ client_action_arg $ client_session_arg $ socket_arg
          $ client_query_arg $ client_db_arg $ agg_arg $ tau_arg $ fallback_arg
          $ jobs_arg $ client_updates_arg $ client_op_arg $ kc_budget_arg
          $ retry_ms_arg)

let seed_arg =
  Arg.(value & opt int 0 & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Master seed; every trial derives deterministically from it.")

let trials_arg =
  Arg.(value & opt int 100 & info [ "n"; "trials" ] ~docv:"N"
         ~doc:"Number of random trials to run.")

let max_endo_arg =
  Arg.(value & opt int 8 & info [ "max-endo" ] ~docv:"K"
         ~doc:"Cap on endogenous facts per trial (the naive oracle costs \
               $(b,2^K) evaluations).")

let max_failures_arg =
  Arg.(value & opt int 3 & info [ "max-failures" ] ~docv:"N"
         ~doc:"Stop after collecting this many shrunk failures.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every trial as it runs.")

let updates_flag_arg =
  Arg.(value & flag & info [ "updates" ]
         ~doc:"Fuzz update sequences instead of single solves: each trial \
               replays a random insert/delete/set_tau script through a \
               live session, cross-checking every step against a \
               from-scratch batch solve.")

let legacy_eval_arg =
  Arg.(value & flag & info [ "legacy-eval" ]
         ~doc:"Run the campaign on the legacy scan evaluator and the \
               rescanning partition (planner and secondary indexes \
               disabled), so both evaluation paths stay green.")

let fuzz_fallback_arg =
  Arg.(value & opt string "naive" & info [ "fallback" ] ~docv:"MODE"
         ~doc:"Which exact fallback tier the campaign stresses: naive \
               (default; the knowledge-compilation tier is still \
               cross-checked on trials outside the frontier), \
               knowledge-compilation (or kc) to additionally drive the \
               lineage pipeline on every trial whose aggregate it \
               supports, inside the frontier included, or auto to \
               cross-check the solve planner's pick against naive \
               enumeration on every trial.")

let ntt_threshold_arg =
  Arg.(value & opt (some int) None & info [ "ntt-threshold" ] ~docv:"L"
         ~doc:"Override the RNS/NTT convolution tier threshold for the \
               campaign. $(b,0) forces the tier on every convolution \
               (cost model bypassed) so fuzz-sized tables exercise the \
               transform differentially against the naive oracle.")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential-testing oracle: random aggregate queries and \
             databases, cross-validating the polynomial DPs against naive \
             enumeration, the Shapley axioms, and every engine \
             configuration; failures are shrunk to a minimal reproducer.")
    Term.(const run_fuzz $ seed_arg $ trials_arg $ max_endo_arg $ jobs_arg $ max_failures_arg $ updates_flag_arg $ ntt_threshold_arg $ legacy_eval_arg $ fuzz_fallback_arg $ verbose_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "shapctl" ~version:"1.0.0"
       ~doc:"Shapley values for aggregate conjunctive queries")
    [ classify_cmd; explain_cmd; eval_cmd; solve_cmd; session_cmd; serve_cmd;
      client_cmd; fuzz_cmd ]

let () = exit (Cmd.eval' main_cmd)
