(* shapctl — command-line front end.

   Subcommands:
     classify  classify a CQ into the hierarchy classes and report the
               tractability frontier for every aggregate function
     explain   explain how one aggregate query would be solved: the
               classification chain, the selected algorithm, and the
               engine's decomposition tree
     eval      evaluate an aggregate query on a database file
     solve     compute Shapley values (all endogenous facts, or one)
     session   incremental maintenance: replay an update script through
               a live solver session, printing values after every step
     fuzz      differential-testing oracle: random AggCQ trials
               cross-validated against naive enumeration

   The value function is given as COLON-separated spec:
     id:REL:POS | relu:REL:POS | gt:REL:POS:BOUND | const:REL:VALUE *)

module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Parser = Aggshap_cq.Parser
module Hierarchy = Aggshap_cq.Hierarchy
module Database = Aggshap_relational.Database
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Solver = Aggshap_core.Solver
module Engine = Aggshap_core.Engine
module Monte_carlo = Aggshap_core.Monte_carlo

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("shapctl: " ^ s); exit 1) fmt

let parse_query_arg s =
  match Parser.parse_query s with
  | Ok q -> q
  | Error msg -> die "cannot parse query %S: %s" s msg

let read_database path =
  let contents =
    try
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg -> die "%s" msg
  in
  match Parser.parse_database contents with
  | Ok db -> db
  | Error msg -> die "cannot parse database %s: %s" path msg

let parse_pos spec s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> n
  | Some _ | None ->
    die "malformed position %S in value function spec %S (expected a non-negative integer)" s spec

let parse_rational what spec s =
  match Q.of_string s with
  | q -> q
  | exception (Invalid_argument _ | Division_by_zero) ->
    die "malformed %s %S in %S (expected an integer or P/Q rational)" what s spec

let parse_tau_spec q spec =
  let check_rel rel =
    if not (List.mem rel (Cq.relations q)) then
      die "value function relation %s is not an atom of the query" rel;
    rel
  in
  match String.split_on_char ':' spec with
  | [ "id"; rel; pos ] -> Value_fn.id ~rel:(check_rel rel) ~pos:(parse_pos spec pos)
  | [ "relu"; rel; pos ] -> Value_fn.relu ~rel:(check_rel rel) ~pos:(parse_pos spec pos)
  | [ "gt"; rel; pos; bound ] ->
    Value_fn.gt ~rel:(check_rel rel) ~pos:(parse_pos spec pos)
      (parse_rational "bound" spec bound)
  | [ "const"; rel; value ] ->
    Value_fn.const ~rel:(check_rel rel) (parse_rational "value" spec value)
  | _ -> die "cannot parse value function spec %S" spec

let default_tau q =
  match Cq.relations q with
  | rel :: _ -> Value_fn.const ~rel Q.one
  | [] -> die "query has no atoms"

let parse_agg s =
  match Aggregate.of_string s with
  | Ok a -> a
  | Error msg -> die "%s" msg

let warn_schema q db =
  match Aggshap_relational.Schema.check_database (Cq.induced_schema q) db with
  | Ok () -> ()
  | Error msgs ->
    List.iter
      (fun m -> Printf.eprintf "shapctl: warning: %s (treated as a null player)\n" m)
      msgs

let make_agg_query agg_s tau_s query =
  let alpha = parse_agg agg_s in
  let tau =
    match tau_s with Some s -> parse_tau_spec query s | None -> default_tau query
  in
  try Agg_query.make alpha tau query with Invalid_argument msg -> die "%s" msg

(* mc:SAMPLES or mc:SAMPLES:SEED. Returns the fallback and the optional
   Monte-Carlo seed. *)
let parse_fallback s =
  let mc_usage = "use naive, fail, or mc:SAMPLES[:SEED]" in
  let positive_int what p =
    match int_of_string_opt p with
    | Some n when n > 0 -> n
    | Some _ | None ->
      die "malformed %s %S in fallback %S (expected a positive integer; %s)" what p s mc_usage
  in
  match s with
  | "naive" -> (`Naive, None)
  | "fail" -> (`Fail, None)
  | _ when String.length s > 3 && String.sub s 0 3 = "mc:" -> begin
    match String.split_on_char ':' (String.sub s 3 (String.length s - 3)) with
    | [ samples ] -> (`Monte_carlo (positive_int "sample count" samples), None)
    | [ samples; seed ] ->
      let seed =
        match int_of_string_opt seed with
        | Some n -> n
        | None -> die "malformed seed %S in fallback %S (expected an integer; %s)" seed s mc_usage
      in
      (`Monte_carlo (positive_int "sample count" samples), Some seed)
    | _ -> die "cannot parse fallback %S (%s)" s mc_usage
  end
  | _ -> die "unknown fallback %S (%s)" s mc_usage

(* ------------------------------------------------------------------ *)
(* classify                                                            *)
(* ------------------------------------------------------------------ *)

let run_classify query_s =
  let q = parse_query_arg query_s in
  Printf.printf "query: %s\n" (Cq.to_string q);
  Printf.printf "class: %s\n\n" (Hierarchy.cls_to_string (Hierarchy.classify q));
  Printf.printf "%-18s %-22s %s\n" "aggregate" "frontier" "tractable here?";
  List.iter
    (fun alpha ->
      Printf.printf "%-18s %-22s %s\n"
        (Aggregate.to_string alpha)
        (Hierarchy.cls_to_string (Solver.frontier alpha))
        (if Solver.within_frontier alpha q then "yes (polynomial)" else "no (#P-hard)"))
    Aggregate.all;
  0

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let run_explain query_s agg_s tau_s fallback_s =
  let q = parse_query_arg query_s in
  let a = make_agg_query agg_s tau_s q in
  let fallback, _mc_seed = parse_fallback fallback_s in
  let report = Solver.report ~fallback a in
  Printf.printf "query: %s\n" (Cq.to_string q);
  Printf.printf "aggregate: %s\n\n" (Aggregate.to_string a.Agg_query.alpha);
  Printf.printf "hierarchy chain (each class contains the next):\n";
  List.iter
    (fun (name, holds) ->
      Printf.printf "  %-20s %s\n" name (if holds then "yes" else "no"))
    [ ("exists-hierarchical", Hierarchy.is_exists_hierarchical q);
      ("all-hierarchical", Hierarchy.is_all_hierarchical q);
      ("q-hierarchical", Hierarchy.is_q_hierarchical q);
      ("sq-hierarchical", Hierarchy.is_sq_hierarchical q) ];
  Printf.printf "class: %s\n\n" (Hierarchy.cls_to_string report.Solver.cls);
  Printf.printf "frontier of %s: %s\n"
    (Aggregate.to_string a.Agg_query.alpha)
    (Hierarchy.cls_to_string report.Solver.frontier);
  Printf.printf "within frontier: %s\n"
    (if report.Solver.within_frontier then "yes (polynomial)" else "no (#P-hard)");
  Printf.printf "algorithm: %s\n\n" report.Solver.algorithm;
  Printf.printf "engine decomposition:\n";
  Format.printf "%a@?" Engine.pp_shape (Engine.shape q);
  0

(* ------------------------------------------------------------------ *)
(* eval                                                                *)
(* ------------------------------------------------------------------ *)

let run_eval query_s db_path agg_s tau_s =
  let q = parse_query_arg query_s in
  let db = read_database db_path in
  warn_schema q db;
  let a = make_agg_query agg_s tau_s q in
  let value = try Agg_query.eval a db with Invalid_argument msg -> die "%s" msg in
  Printf.printf "%s = %s (~ %g)\n" agg_s (Q.to_string value) (Q.to_float value);
  0

(* ------------------------------------------------------------------ *)
(* solve                                                               *)
(* ------------------------------------------------------------------ *)

(* --stats: per-kernel counter report after a solve. The counters are
   plain (non-atomic) globals, so under --jobs > 1 the numbers are
   approximate — flagged in the output. *)
let print_kernel_stats parallel =
  let bs = Aggshap_arith.Bigint.stats () in
  let ts = Aggshap_core.Tables.stats () in
  let es = Engine.stats () in
  let approx = if parallel then " (approximate: parallelism enabled)" else "" in
  Printf.printf "kernel counters%s:\n" approx;
  List.iter
    (fun (name, v) -> Printf.printf "  %-18s %d\n" name v)
    [ ("mul_schoolbook", bs.Aggshap_arith.Bigint.mul_schoolbook);
      ("mul_karatsuba", bs.Aggshap_arith.Bigint.mul_karatsuba);
      ("mul_small", bs.Aggshap_arith.Bigint.mul_small);
      ("sqr", bs.Aggshap_arith.Bigint.sqr);
      ("divmod", bs.Aggshap_arith.Bigint.divmod);
      ("gcd", bs.Aggshap_arith.Bigint.gcd);
      ("acc_mul", bs.Aggshap_arith.Bigint.acc_mul);
      ("convolve", ts.Aggshap_core.Tables.convolve);
      ("convolve_rat", ts.Aggshap_core.Tables.convolve_rat);
      ("tree_folds", ts.Aggshap_core.Tables.tree_folds);
      ("weighted_sums", ts.Aggshap_core.Tables.weighted_sums);
      ("engine_nodes", es.Engine.nodes);
      ("engine_leaves", es.Engine.leaves);
      ("engine_merges", es.Engine.merges);
      ("engine_combines", es.Engine.combines);
      ("engine_par_merges", es.Engine.parallel_merges) ]

let run_solve query_s db_path agg_s tau_s fact_s fallback_s score_s jobs block_jobs cache stats =
  let q = parse_query_arg query_s in
  let db = read_database db_path in
  warn_schema q db;
  let a = make_agg_query agg_s tau_s q in
  let fallback, mc_seed = parse_fallback fallback_s in
  (match jobs with
   | Some j when j < 1 -> die "--jobs must be at least 1 (got %d)" j
   | _ -> ());
  (match block_jobs with
   | Some b when b < 1 -> die "--block-jobs must be at least 1 (got %d)" b
   | Some b -> Engine.set_block_jobs b
   | None -> ());
  if stats then begin
    Aggshap_arith.Bigint.reset_stats ();
    Aggshap_core.Tables.reset_stats ();
    Engine.reset_stats ()
  end;
  let parallel =
    (match jobs with Some j -> j > 1 | None -> false)
    || (match block_jobs with Some b -> b > 1 | None -> false)
  in
  if score_s = "banzhaf" then begin
    (try
       List.iter
         (fun f ->
           Printf.printf "%-30s %s\n"
             (Aggshap_relational.Fact.to_string f)
             (Q.to_string (Aggshap_core.Solver.banzhaf a db f)))
         (match fact_s with
          | None -> Database.endogenous db
          | Some s -> (
            match Parser.parse_fact s with
            | Ok (f, _) -> [ f ]
            | Error msg -> die "cannot parse fact %S: %s" s msg))
     with Invalid_argument msg -> die "%s" msg);
    if stats then print_kernel_stats parallel;
    0
  end
  else if score_s <> "shapley" then die "unknown score %S (use shapley or banzhaf)" score_s
  else begin
  let print_outcome fact outcome =
    match outcome with
    | Solver.Exact v ->
      Printf.printf "%-30s %s (~ %g)\n"
        (Aggshap_relational.Fact.to_string fact)
        (Q.to_string v) (Q.to_float v)
    | Solver.Estimate e ->
      Printf.printf "%-30s %.6f ± %.6f (%d samples)\n"
        (Aggshap_relational.Fact.to_string fact)
        e.Monte_carlo.mean e.Monte_carlo.std_error e.Monte_carlo.samples
  in
  (try
     match fact_s with
     | Some s -> begin
       match Parser.parse_fact s with
       | Error msg -> die "cannot parse fact %S: %s" s msg
       | Ok (f, _) ->
         let outcome, report = Solver.shapley ~fallback ?mc_seed a db f in
         Printf.printf "class: %s; algorithm: %s\n" (Hierarchy.cls_to_string report.Solver.cls)
           report.Solver.algorithm;
         print_outcome f outcome
     end
     | None ->
       let results, report = Solver.shapley_all ~fallback ?mc_seed ?jobs ~cache a db in
       Printf.printf "class: %s; algorithm: %s\n" (Hierarchy.cls_to_string report.Solver.cls)
         report.Solver.algorithm;
       List.iter (fun (f, o) -> print_outcome f o) results
   with Invalid_argument msg -> die "%s" msg);
  if stats then print_kernel_stats parallel;
  0
  end

(* ------------------------------------------------------------------ *)
(* session                                                             *)
(* ------------------------------------------------------------------ *)

let read_file what path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error msg -> die "cannot read %s: %s" what msg

let run_session query_s db_path agg_s tau_s updates_path jobs stats =
  let module Session = Aggshap_incr.Session in
  let module Script = Aggshap_incr.Script in
  let module Update = Aggshap_incr.Update in
  let q = parse_query_arg query_s in
  let db = read_database db_path in
  warn_schema q db;
  let a = make_agg_query agg_s tau_s q in
  (match jobs with
   | Some j when j < 1 -> die "--jobs must be at least 1 (got %d)" j
   | _ -> ());
  let ops =
    match Script.parse (read_file "update script" updates_path) with
    | Ok ops -> ops
    | Error msg -> die "%s: %s" updates_path msg
  in
  let session =
    try Session.open_ ?jobs a db with Invalid_argument msg -> die "%s" msg
  in
  let print_step label =
    Printf.printf "step %s\n" label;
    match Session.shapley_all session with
    | [] -> print_endline "  (no endogenous facts)"
    | results ->
      List.iter
        (fun (f, v) ->
          Printf.printf "  %-28s %s\n" (Aggshap_relational.Fact.to_string f) (Q.to_string v))
        results
  in
  print_step "0 (initial)";
  List.iteri
    (fun i (line, op) ->
      (try Session.apply session op
       with Invalid_argument msg -> die "%s: line %d: %s" updates_path line msg);
      print_step (Printf.sprintf "%d (%s)" (i + 1) (Update.to_string op)))
    ops;
  if stats then print_endline (Session.stats_to_string (Session.stats session));
  0

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let run_fuzz seed trials max_endo jobs max_failures updates verbose =
  if trials < 1 then die "--trials must be at least 1 (got %d)" trials;
  if max_endo < 1 then die "--max-endo must be at least 1 (got %d)" max_endo;
  (match jobs with Some j when j < 1 -> die "--jobs must be at least 1 (got %d)" j | _ -> ());
  if max_failures < 1 then die "--max-failures must be at least 1 (got %d)" max_failures;
  let module Fuzz = Aggshap_check.Fuzz in
  let module Trial = Aggshap_check.Trial in
  let module Utrial = Aggshap_check.Utrial in
  let module Oracle = Aggshap_check.Oracle in
  let config =
    { Fuzz.seed; trials; max_endo;
      par_jobs = Option.value jobs ~default:Fuzz.default.Fuzz.par_jobs;
      max_failures }
  in
  if updates then begin
    Printf.printf "fuzz: update sequences, seed=%d trials=%d max-endo=%d\n%!" seed trials
      max_endo;
    let on_trial i t =
      if verbose then Printf.printf "trial %d: %s\n%!" i (Utrial.to_string t)
    in
    let report = Fuzz.run_updates ~on_trial config in
    List.iter
      (fun { Fuzz.utrial; ufailure; ushrunk; ushrunk_failure } ->
        Printf.printf "\nFAILURE on %s\n  %s\n" (Utrial.to_string utrial)
          (Oracle.failure_to_string ufailure);
        Printf.printf "shrunk to %s\n  %s\nreproducer:\n%s" (Utrial.to_string ushrunk)
          (Oracle.failure_to_string ushrunk_failure)
          (Utrial.to_script ushrunk))
      report.Fuzz.ufailures;
    let n_failures = List.length report.Fuzz.ufailures in
    Printf.printf "fuzz: %d trials, %d update steps, %d failure%s\n" report.Fuzz.uran
      report.Fuzz.usteps n_failures
      (if n_failures = 1 then "" else "s");
    if n_failures = 0 then 0 else 1
  end
  else begin
    Printf.printf "fuzz: seed=%d trials=%d max-endo=%d\n%!" seed trials max_endo;
    let on_trial i t = if verbose then Printf.printf "trial %d: %s\n%!" i (Trial.to_string t) in
    let report = Fuzz.run ~on_trial config in
    List.iter
      (fun { Fuzz.trial; failure; shrunk; shrunk_failure } ->
        Printf.printf "\nFAILURE on %s\n  %s\n" (Trial.to_string trial)
          (Oracle.failure_to_string failure);
        Printf.printf "shrunk to %s\n  %s\nreproducer:\n%s" (Trial.to_string shrunk)
          (Oracle.failure_to_string shrunk_failure)
          (Trial.to_script shrunk))
      report.Fuzz.failures;
    let n_failures = List.length report.Fuzz.failures in
    Printf.printf "fuzz: %d trials, %d failure%s\n" report.Fuzz.ran n_failures
      (if n_failures = 1 then "" else "s");
    if n_failures = 0 then 0 else 1
  end

(* ------------------------------------------------------------------ *)
(* cmdliner wiring                                                     *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let query_arg =
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY"
         ~doc:"Conjunctive query, e.g. 'Q(x) <- R(x,y), S(y)'.")

let db_arg =
  Arg.(required & opt (some string) None & info [ "d"; "database" ] ~docv:"FILE"
         ~doc:"Database file: one fact per line, e.g. 'R(1,2)' or 'S(3) @exo'.")

let agg_arg =
  Arg.(value & opt string "count" & info [ "a"; "aggregate" ] ~docv:"AGG"
         ~doc:"Aggregate function: sum, count, count-distinct, min, max, avg, \
               median, quantile:P/Q, has-duplicates.")

let tau_arg =
  Arg.(value & opt (some string) None & info [ "t"; "tau" ] ~docv:"SPEC"
         ~doc:"Value function: id:REL:POS, relu:REL:POS, gt:REL:POS:BOUND, \
               const:REL:VALUE. Defaults to the constant 1.")

let fact_arg =
  Arg.(value & opt (some string) None & info [ "f"; "fact" ] ~docv:"FACT"
         ~doc:"Restrict to one endogenous fact, e.g. 'R(1,2)'.")

let score_arg =
  Arg.(value & opt string "shapley" & info [ "score" ] ~docv:"SCORE"
         ~doc:"Attribution score: shapley (default) or banzhaf.")

let fallback_arg =
  Arg.(value & opt string "naive" & info [ "fallback" ] ~docv:"MODE"
         ~doc:"What to do outside the tractability frontier: naive (exact, \
               exponential), mc:SAMPLES or mc:SAMPLES:SEED (Monte Carlo; \
               a seed makes the estimates reproducible), or fail.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for the all-facts batch (default: the \
               recommended domain count of the machine; 1 disables \
               parallelism). Results are identical for every N.")

let block_jobs_arg =
  Arg.(value & opt (some int) None & info [ "block-jobs" ] ~docv:"N"
         ~doc:"Worker domains for independent root blocks inside one \
               decomposition-engine evaluation (default 1: sequential). \
               Results are identical for every N; composes with --jobs.")

let cache_arg =
  Arg.(value & opt bool true & info [ "cache" ] ~docv:"BOOL"
         ~doc:"Share dynamic-programming tables across the per-fact batch \
               loop (default true). Results are identical either way.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print arithmetic/convolution kernel counters after solving \
               (approximate when --jobs > 1).")

let classify_cmd =
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify a CQ and print its per-aggregate tractability")
    Term.(const run_classify $ query_arg)

let eval_cmd =
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate an aggregate query over a database")
    Term.(const run_eval $ query_arg $ db_arg $ agg_arg $ tau_arg)

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain how one aggregate query would be solved: the hierarchy \
             classification chain, the aggregate's tractability frontier, \
             the selected algorithm, and the decomposition tree the generic \
             engine evaluates.")
    Term.(const run_explain $ query_arg $ agg_arg $ tau_arg $ fallback_arg)

let solve_cmd =
  Cmd.v
    (Cmd.info "solve" ~doc:"Compute Shapley values of endogenous facts")
    Term.(const run_solve $ query_arg $ db_arg $ agg_arg $ tau_arg $ fact_arg $ fallback_arg $ score_arg $ jobs_arg $ block_jobs_arg $ cache_arg $ stats_arg)

let updates_file_arg =
  Arg.(required & opt (some string) None & info [ "u"; "updates" ] ~docv:"FILE"
         ~doc:"Update script: one operation per line ('insert R(4, 10)', \
               'insert S(30) \\@exo', 'delete R(1, 10)', 'set_tau id:R:0'), \
               $(b,#) comments and blank lines ignored.")

let session_stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print session reuse statistics (games recomputed vs served \
               from cache, DP-table cache hits) after the replay.")

let session_cmd =
  Cmd.v
    (Cmd.info "session"
       ~doc:"Replay an update script through a live incremental solver \
             session, printing exact Shapley values after every step. \
             Values are bit-identical to re-solving from scratch; only \
             the state dirtied by each update is recomputed.")
    Term.(const run_session $ query_arg $ db_arg $ agg_arg $ tau_arg $ updates_file_arg $ jobs_arg $ session_stats_arg)

let seed_arg =
  Arg.(value & opt int 0 & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Master seed; every trial derives deterministically from it.")

let trials_arg =
  Arg.(value & opt int 100 & info [ "n"; "trials" ] ~docv:"N"
         ~doc:"Number of random trials to run.")

let max_endo_arg =
  Arg.(value & opt int 8 & info [ "max-endo" ] ~docv:"K"
         ~doc:"Cap on endogenous facts per trial (the naive oracle costs \
               $(b,2^K) evaluations).")

let max_failures_arg =
  Arg.(value & opt int 3 & info [ "max-failures" ] ~docv:"N"
         ~doc:"Stop after collecting this many shrunk failures.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every trial as it runs.")

let updates_flag_arg =
  Arg.(value & flag & info [ "updates" ]
         ~doc:"Fuzz update sequences instead of single solves: each trial \
               replays a random insert/delete/set_tau script through a \
               live session, cross-checking every step against a \
               from-scratch batch solve.")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential-testing oracle: random aggregate queries and \
             databases, cross-validating the polynomial DPs against naive \
             enumeration, the Shapley axioms, and every engine \
             configuration; failures are shrunk to a minimal reproducer.")
    Term.(const run_fuzz $ seed_arg $ trials_arg $ max_endo_arg $ jobs_arg $ max_failures_arg $ updates_flag_arg $ verbose_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "shapctl" ~version:"1.0.0"
       ~doc:"Shapley values for aggregate conjunctive queries")
    [ classify_cmd; explain_cmd; eval_cmd; solve_cmd; session_cmd; fuzz_cmd ]

let () = exit (Cmd.eval' main_cmd)
