(* bench/validate.exe FILE [--compare BASELINE.json [--tolerance PCT]]

   Parse FILE and check it against the BENCH_v1 schema; exit 1 with a
   diagnostic otherwise. With [--compare], additionally gate wall-clock
   regressions against a committed baseline report: every pinned
   experiment row of the baseline (E13–E16, E18–E21 — the deterministic
   kernel / incremental / engine benchmarks) must be present in FILE and must
   not be slower than baseline by more than the tolerance (default
   25%). A per-row delta table is always printed; E17 (server latency)
   and other unpinned rows are reported but never gate. CI runs this on
   the artifact produced by [bench/main.exe --quick --json]. *)

let usage () =
  prerr_endline
    "usage: validate.exe BENCH.json [--compare BASELINE.json [--tolerance PCT]]";
  exit 2

(* Rows too fast for a stable ratio: an absolute floor below which a
   regression cannot be claimed (timer noise dominates — the
   sub-millisecond rows swing 2x between runs on an otherwise idle
   machine). *)
let noise_floor_s = 0.002

type args = { path : string; compare : string option; tolerance : float }

let parse_args () =
  let rec go acc = function
    | [] -> acc
    | "--compare" :: base :: rest -> go { acc with compare = Some base } rest
    | "--tolerance" :: pct :: rest -> (
      match float_of_string_opt pct with
      | Some t when t >= 0.0 -> go { acc with tolerance = t } rest
      | _ ->
        prerr_endline ("validate: --tolerance wants a non-negative number, got " ^ pct);
        exit 2)
    | path :: rest when acc.path = "" -> go { acc with path } rest
    | _ -> usage ()
  in
  let acc =
    go { path = ""; compare = None; tolerance = 25.0 } (List.tl (Array.to_list Sys.argv))
  in
  if acc.path = "" then usage () else acc

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error msg ->
    prerr_endline ("validate: " ^ msg);
    exit 1

let load path =
  match Bench_json.parse (read_file path) with
  | Error msg ->
    Printf.eprintf "validate: %s: JSON parse error %s\n" path msg;
    exit 1
  | Ok json -> (
    match Bench_json.validate json with
    | Error msg ->
      Printf.eprintf "validate: %s: schema violation: %s\n" path msg;
      exit 1
    | Ok () -> json)

(* The regression gate covers the deterministic benchmark experiments;
   E17 latency rows (load-dependent) are informational only. E18 and
   E19 are pinned so the convolution-tier and join-planner wins stay
   locked in: a regression in either arm of a before/after pair shows
   up as a slower row. E20 pins the knowledge-compilation tier the
   same way, and E21 pins the solve planner's auto tier. *)
let pinned experiment =
  List.mem experiment [ "E13"; "E14"; "E15"; "E16"; "E18"; "E19"; "E20"; "E21" ]

(* Tier-selection guard, run on every report (no baseline needed): an
   E18 ":ntt" row where the NTT tier actually fired
   (kernels.convolve_ntt > 0) yet lost to the classic path
   (speedup_vs_classic < 1) means the dispatch threshold selected the
   tier where it hurts. Slow enough rows only — sub-noise-floor pairs
   swing too much for the ratio to mean anything. *)
let check_ntt_selection json =
  let open Bench_json in
  let rows = match member "results" json with Some (List rs) -> rs | _ -> [] in
  let number = function
    | Some (Int i) -> Some (float_of_int i)
    | Some (Float f) -> Some f
    | _ -> None
  in
  let bad =
    List.filter
      (fun r ->
        match (member "experiment" r, member "workload" r) with
        | Some (String "E18"), Some (String w)
          when String.length w > 4
               && String.sub w (String.length w - 4) 4 = ":ntt" -> (
          let ntt_convs =
            match member "kernels" r with
            | Some k -> (match member "convolve_ntt" k with Some (Int n) -> n | _ -> 0)
            | None -> 0
          in
          match (number (member "speedup_vs_classic" r), number (member "wall_s" r)) with
          | Some speedup, Some wall ->
            ntt_convs > 0 && wall >= noise_floor_s && speedup < 1.0
          | _ -> false)
        | _ -> false)
      rows
  in
  List.iter
    (fun r ->
      match (member "workload" r, member "n" r) with
      | Some (String w), Some (Int n) ->
        Printf.eprintf
          "validate: NTT tier selected where it loses: %s n=%d (speedup < 1)\n" w n
      | _ -> ())
    bad;
  if bad <> [] then exit 1

(* Planner-overhead guard, run on every report (no baseline needed):
   an E21 ":auto" row must not run slower than 1.2x the best forced
   exact tier on the same instance — the planner's whole point is that
   picking a route costs (almost) nothing. The forced wall-clock rides
   on the auto row itself as [best_forced_s]. Sub-noise-floor pairs are
   skipped for the same reason as above. A report that carries E21 rows
   must also carry the ":budget" degradation row, so the
   abort-and-fall-back path stays exercised in every baseline. *)
let check_auto_planner json =
  let open Bench_json in
  let rows = match member "results" json with Some (List rs) -> rs | _ -> [] in
  let number = function
    | Some (Int i) -> Some (float_of_int i)
    | Some (Float f) -> Some f
    | _ -> None
  in
  let e21 =
    List.filter
      (fun r -> match member "experiment" r with
        | Some (String "E21") -> true
        | _ -> false)
      rows
  in
  let workload r = match member "workload" r with Some (String w) -> w | _ -> "" in
  let suffix s tail =
    let n = String.length s and m = String.length tail in
    n >= m && String.sub s (n - m) m = tail
  in
  let bad =
    List.filter
      (fun r ->
        suffix (workload r) ":auto"
        &&
        match (number (member "wall_s" r), number (member "best_forced_s" r)) with
        | Some wall, Some best ->
          wall >= noise_floor_s && best >= noise_floor_s
          && wall > 1.2 *. best
        | _ -> false)
      e21
  in
  List.iter
    (fun r ->
      match (number (member "wall_s" r), number (member "best_forced_s" r),
             member "n" r) with
      | Some wall, Some best, Some (Int n) ->
        Printf.eprintf
          "validate: planner overhead: %s n=%d took %.4fs vs best forced %.4fs (> 1.2x)\n"
          (workload r) n wall best
      | _ -> ())
    bad;
  let missing_budget =
    e21 <> [] && not (List.exists (fun r -> suffix (workload r) ":budget") e21)
  in
  if missing_budget then
    prerr_endline
      "validate: E21 rows present but no \":budget\" degradation row — the \
       node-budget abort path is not exercised";
  if bad <> [] || missing_budget then exit 1

let compare_reports ~tolerance ~base_path baseline current =
  let open Bench_json in
  let base_rows = report_rows baseline in
  let cur_rows = report_rows current in
  let lookup key =
    List.find_opt (fun r -> row_key r = key) cur_rows
  in
  Printf.printf "\nregression gate: vs %s, tolerance %+.0f%% on pinned rows (%s)\n"
    base_path tolerance "E13-E16, E18-E21";
  Printf.printf "%-44s %10s %10s %8s  %s\n" "row" "baseline" "current" "delta" "gate";
  let failures =
    List.fold_left
      (fun failures base ->
        let key = row_key base in
        let gated = pinned base.experiment in
        match lookup key with
        | None ->
          Printf.printf "%-44s %9.4fs %10s %8s  %s\n" key base.wall_s "-" "-"
            (if gated then "FAIL (missing)" else "skip (missing)");
          if gated then failures + 1 else failures
        | Some cur ->
          let delta_pct =
            if base.wall_s <= 0.0 then 0.0
            else (cur.wall_s -. base.wall_s) /. base.wall_s *. 100.0
          in
          let too_small =
            base.wall_s < noise_floor_s && cur.wall_s < noise_floor_s
          in
          let regressed = (not too_small) && delta_pct > tolerance in
          let verdict =
            if not gated then "info"
            else if too_small then "ok (below noise floor)"
            else if regressed then "FAIL"
            else "ok"
          in
          Printf.printf "%-44s %9.4fs %9.4fs %+7.1f%%  %s\n" key base.wall_s
            cur.wall_s delta_pct verdict;
          if gated && regressed then failures + 1 else failures)
      0 base_rows
  in
  let new_rows =
    List.filter
      (fun r -> not (List.exists (fun b -> row_key b = row_key r) base_rows))
      cur_rows
  in
  List.iter
    (fun r -> Printf.printf "%-44s %10s %9.4fs %8s  new\n" (row_key r) "-" r.wall_s "-")
    new_rows;
  if failures > 0 then begin
    Printf.eprintf
      "validate: %d pinned row%s regressed beyond %.0f%% (or went missing)\n" failures
      (if failures = 1 then "" else "s")
      tolerance;
    exit 1
  end
  else Printf.printf "regression gate: all pinned rows within tolerance\n"

let () =
  let args = parse_args () in
  let json = load args.path in
  let count =
    match json with
    | Bench_json.Obj fields -> (
      match List.assoc_opt "results" fields with
      | Some (Bench_json.List rs) -> List.length rs
      | _ -> 0)
    | _ -> 0
  in
  Printf.printf "validate: %s: valid %s report with %d result row%s\n" args.path
    Bench_json.schema_version count
    (if count = 1 then "" else "s");
  check_ntt_selection json;
  check_auto_planner json;
  match args.compare with
  | None -> ()
  | Some base_path ->
    let baseline = load base_path in
    compare_reports ~tolerance:args.tolerance ~base_path baseline json
