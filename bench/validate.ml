(* bench/validate.exe FILE — parse FILE and check it against the
   BENCH_v1 schema; exit 1 with a diagnostic otherwise. CI runs this on
   the artifact produced by [bench/main.exe --quick --json]. *)

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
      prerr_endline "usage: validate.exe BENCH.json";
      exit 2
  in
  let contents =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg ->
      prerr_endline ("validate: " ^ msg);
      exit 1
  in
  match Bench_json.parse contents with
  | Error msg ->
    Printf.eprintf "validate: %s: JSON parse error %s\n" path msg;
    exit 1
  | Ok json -> (
    match Bench_json.validate json with
    | Error msg ->
      Printf.eprintf "validate: %s: schema violation: %s\n" path msg;
      exit 1
    | Ok () ->
      let count =
        match json with
        | Bench_json.Obj fields -> (
          match List.assoc_opt "results" fields with
          | Some (Bench_json.List rs) -> List.length rs
          | _ -> 0)
        | _ -> 0
      in
      Printf.printf "validate: %s: valid %s report with %d result row%s\n" path
        Bench_json.schema_version count
        (if count = 1 then "" else "s"))
