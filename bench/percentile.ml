(* Nearest-rank percentile of a sorted sample array.

   [percentile sorted p] for [p] in [0, 1] picks the sample at
   one-based rank [ceil (p * n)], clamped into the array — the
   classic nearest-rank method, which needs no interpolation and is
   total on every sample count: a 1-sample run reports that sample for
   every percentile (rank clamps to 0) and an empty run reports 0.
   Extracted from the load generator so the index arithmetic is unit
   tested instead of trusted. *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
