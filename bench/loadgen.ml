(* bench/loadgen.exe — load generator for the shapctl session server.

   Forks N client processes, each owning one tenant session on a running
   server. Every client opens its session (a Sum workload on the q_xyy
   shape, with an id value function so updates actually move the
   values), then fires M update+solve round-trips: a delete/re-insert
   pair followed by a full solve. Per-request wall-clock latencies are
   collected from all clients and reported as p50/p99 per request kind,
   both as a table on stdout and — with [--json FILE] — as E17 rows in a
   BENCH_v1 report (the same schema bench/main.exe emits, validated by
   bench/validate.exe).

   Usage:
     loadgen.exe --socket PATH [--clients N] [--requests M] [--rows R]
                 [--spawn] [--json FILE]

   [--spawn] forks a private server on PATH first (and shuts it down at
   the end) so the tool is self-contained; without it, PATH must belong
   to an already-running [shapctl serve]. *)

module Client = Aggshap_server.Client
module Protocol = Aggshap_server.Protocol
module Server = Aggshap_server.Server
module Api = Aggshap_api.Api
module J = Aggshap_json.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("loadgen: " ^ s); exit 1) fmt

(* ------------------------------------------------------------------ *)
(* Arguments                                                           *)
(* ------------------------------------------------------------------ *)

let argv = Array.to_list Sys.argv

let opt_value name =
  let rec find = function
    | flag :: v :: _ when flag = name -> Some v
    | _ :: rest -> find rest
    | [] -> None
  in
  find argv

let int_opt name default =
  match opt_value name with
  | None -> default
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> die "%s wants a positive integer (got %S)" name s)

let socket =
  match opt_value "--socket" with
  | Some s -> s
  | None ->
    prerr_endline
      "usage: loadgen.exe --socket PATH [--clients N] [--requests M] [--rows R] \
       [--spawn] [--json FILE]";
    exit 2

let clients = int_opt "--clients" 4
let requests = int_opt "--requests" 20
let rows = int_opt "--rows" 40
let json_path = opt_value "--json"
let spawn = List.mem "--spawn" argv

(* ------------------------------------------------------------------ *)
(* Workload: Sum over Qxyy(x) <- R(x,y), S(y), τ = id:R:0               *)
(* ------------------------------------------------------------------ *)

let query = "Q(x) <- R(x, y), S(y)"

let database_text rows =
  let groups = max 1 (int_of_float (sqrt (float_of_int rows))) in
  let b = Buffer.create (rows * 12) in
  for i = 0 to rows - 1 do
    Buffer.add_string b (Printf.sprintf "R(%d, %d)\n" i (i mod groups))
  done;
  for j = 0 to groups - 1 do
    Buffer.add_string b (Printf.sprintf "S(%d)\n" j)
  done;
  Buffer.contents b

let spec =
  { Api.query; db = database_text rows; agg = "sum"; tau = Some "id:R:0";
    jobs = Some 1 }

(* The update stream: delete/re-insert pairs over the first R fact, so
   the database returns to its base state after every round-trip and
   solve cost stays flat across the run. *)
let update_script step =
  if step mod 2 = 0 then "delete R(0, 0)" else "insert R(0, 0)"

(* ------------------------------------------------------------------ *)
(* One client process                                                  *)
(* ------------------------------------------------------------------ *)

(* Children report latencies through a temp file — one "KIND SECONDS"
   line per request — because waitpid gives the parent only an exit
   status. *)
let run_client ~tenant ~out_path =
  let oc = open_out out_path in
  let record kind t0 =
    Printf.fprintf oc "%s %.9f\n" kind (Unix.gettimeofday () -. t0)
  in
  let fail msg =
    close_out oc;
    prerr_endline (Printf.sprintf "loadgen: client %s: %s" tenant msg);
    exit 1
  in
  let outcome =
    Client.with_connection socket (fun c ->
        let roundtrip kind req expect =
          let t0 = Unix.gettimeofday () in
          match Client.request c req with
          | Error msg -> Error msg
          | Ok (Protocol.Error { message; _ }) -> Error message
          | Ok r ->
            record kind t0;
            expect r
        in
        let ( let* ) = Result.bind in
        let* () =
          roundtrip "open" (Protocol.Open { session = tenant; spec }) (function
            | Protocol.Opened _ -> Ok ()
            | _ -> Error "unexpected reply to open")
        in
        let rec go step =
          if step >= requests then Ok ()
          else
            let* () =
              roundtrip "update"
                (Protocol.Update { session = tenant; script = update_script step })
                (function
                  | Protocol.Updated _ -> Ok ()
                  | _ -> Error "unexpected reply to update")
            in
            let* () =
              roundtrip "solve" (Protocol.Solve { session = tenant }) (function
                | Protocol.Solved { values; _ } when values <> [] -> Ok ()
                | Protocol.Solved _ -> Error "solve returned no values"
                | _ -> Error "unexpected reply to solve")
            in
            go (step + 1)
        in
        let* () = go 0 in
        roundtrip "close" (Protocol.Close { session = tenant }) (function
          | Protocol.Closed _ -> Ok ()
          | _ -> Error "unexpected reply to close"))
  in
  match outcome with
  | Ok () ->
    close_out oc;
    exit 0
  | Error msg -> fail msg

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

(* Nearest-rank percentile, total on every sample count (a 1-sample run
   reports that sample for every percentile). Lives in [Percentile] so
   the rank arithmetic is unit tested. *)
let percentile = Percentile.percentile

let read_latencies path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> (
      match String.split_on_char ' ' line with
      | [ kind; t ] -> (
        match float_of_string_opt t with
        | Some lat -> go ((kind, lat) :: acc)
        | None -> go acc)
      | _ -> go acc)
    | exception End_of_file ->
      close_in ic;
      acc
  in
  go []

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let server_pid =
    if not spawn then None
    else begin
      match Unix.fork () with
      | 0 ->
        let config =
          { Server.socket; max_sessions = max 1 (clients / 2); state_dir = None;
            default_jobs = Some 1; log = ignore }
        in
        (match Server.run config with
         | Ok () -> exit 0
         | Error msg ->
           prerr_endline ("loadgen: server: " ^ msg);
           exit 1)
      | pid -> Some pid
    end
  in
  (* Make sure the server answers before starting the clock. *)
  (match
     Client.with_connection socket (fun c -> Client.request c Protocol.Ping)
   with
  | Ok Protocol.Pong -> ()
  | Ok _ -> die "unexpected reply to ping on %s" socket
  | Error msg -> die "%s" msg);
  Printf.printf "loadgen: %d clients x %d update+solve round-trips, %d rows/tenant, %s\n%!"
    clients requests rows socket;
  let out_path i = Filename.temp_file "loadgen" (Printf.sprintf ".%d.lat" i) in
  let children =
    List.init clients (fun i ->
        let path = out_path i in
        match Unix.fork () with
        | 0 -> run_client ~tenant:(Printf.sprintf "tenant-%d" i) ~out_path:path
        | pid -> (pid, path))
  in
  let t0 = Unix.gettimeofday () in
  let failures =
    List.fold_left
      (fun acc (pid, _) ->
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> acc
        | _, _ -> acc + 1)
      0 children
  in
  let wall = Unix.gettimeofday () -. t0 in
  let latencies = List.concat_map (fun (_, path) -> read_latencies path) children in
  List.iter (fun (_, path) -> try Sys.remove path with Sys_error _ -> ()) children;
  (match server_pid with
  | None -> ()
  | Some pid ->
    (match
       Client.with_connection socket (fun c -> Client.request c Protocol.Shutdown)
     with
    | Ok _ -> ()
    | Error _ -> (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()));
    ignore (Unix.waitpid [] pid));
  if failures > 0 then die "%d of %d clients failed" failures clients;
  let kinds = [ "open"; "update"; "solve"; "close" ] in
  Printf.printf "%-8s %8s %12s %12s %12s %12s\n" "request" "count" "p50" "p99" "max"
    "mean";
  let stats =
    List.map
      (fun kind ->
        let ls =
          List.filter_map (fun (k, t) -> if k = kind then Some t else None) latencies
        in
        let sorted = Array.of_list ls in
        Array.sort compare sorted;
        let count = Array.length sorted in
        let p50 = percentile sorted 0.50 in
        let p99 = percentile sorted 0.99 in
        let mx = if count = 0 then 0.0 else sorted.(count - 1) in
        let mean =
          if count = 0 then 0.0
          else Array.fold_left ( +. ) 0.0 sorted /. float_of_int count
        in
        Printf.printf "%-8s %8d %11.5fs %11.5fs %11.5fs %11.5fs\n" kind count p50 p99
          mx mean;
        (kind, count, p50, p99))
      kinds
  in
  let total = List.fold_left (fun acc (_, c, _, _) -> acc + c) 0 stats in
  Printf.printf "total: %d requests in %.3fs (%.1f req/s)\n" total wall
    (float_of_int total /. Stdlib.max 1e-9 wall);
  match json_path with
  | None -> ()
  | Some path ->
    let row workload wall_s reqs =
      J.Obj
        [ ("experiment", J.String "E17");
          ("workload", J.String workload);
          ("n", J.Int requests);
          ("players", J.Int clients);
          ("wall_s", J.Float wall_s);
          ("kernels", J.Obj [ ("requests", J.Int reqs); ("rows", J.Int rows) ]) ]
    in
    let results =
      List.concat_map
        (fun (kind, count, p50, p99) ->
          if count = 0 then []
          else
            [ row (Printf.sprintf "serve_%s:p50" kind) p50 count;
              row (Printf.sprintf "serve_%s:p99" kind) p99 count ])
        stats
      @ [ row "serve_total" wall total ]
    in
    let report =
      J.Obj
        [ ("schema", J.String Bench_json.schema_version);
          ("quick", J.Bool true);
          ("results", J.List results) ]
    in
    (match Bench_json.validate report with
     | Ok () -> ()
     | Error msg -> die "emitted report violates BENCH_v1: %s" msg);
    let oc = open_out path in
    output_string oc (J.to_string report);
    close_out oc;
    Printf.printf "wrote %s (%s, %d result rows)\n" path Bench_json.schema_version
      (List.length results)
