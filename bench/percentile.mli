(** Nearest-rank percentile for the latency reports. *)

val percentile : float array -> float -> float
(** [percentile sorted p] is the nearest-rank [p]-percentile (one-based
    rank [ceil (p * n)], clamped) of the ascending-sorted samples;
    [0.0] on an empty array. Total for every sample count — a single
    sample is reported as every percentile. *)
