(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md.

   The paper is a theory paper with no measured tables, so each
   experiment here validates a theorem's observable footprint — the
   polynomial/exponential runtime split at each tractability frontier,
   the agreement of closed forms and reductions with brute force — and
   prints one table per experiment (E1..E21). A final section runs one
   Bechamel micro-benchmark per experiment.

   Usage: bench/main.exe [--quick] [--only e14,e18] [--json FILE]
   (--quick shrinks the sweeps; --only restricts to the named
   experiments, for calibration loops) *)

module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Parser = Aggshap_cq.Parser
module Hierarchy = Aggshap_cq.Hierarchy
module Plan = Aggshap_cq.Plan
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Core = Aggshap_core
module Catalog = Aggshap_workload.Catalog
module Generate = Aggshap_workload.Generate
module Setcover = Aggshap_reductions.Setcover
module Avg_red = Aggshap_reductions.Avg_reduction
module Qnt_red = Aggshap_reductions.Quantile_reduction
module Perm_red = Aggshap_reductions.Permanent_reduction

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

(* Single experiments can run for minutes; flush after every [printf] so
   progress is visible when stdout is redirected (CI logs, nohup). *)
module Printf = struct
  include Printf

  let printf fmt = kfprintf (fun oc -> flush oc) Stdlib.stdout fmt
end

(* [--json FILE]: also write the E14 kernel-instrumented baseline as a
   BENCH_v1 report (see {!Bench_json}) for CI and regression tracking. *)
let json_path =
  let rec find = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

(* [--only e14,e18]: restrict the run to the named experiments. *)
let only =
  let rec find = function
    | "--only" :: names :: _ -> Some (String.split_on_char ',' names)
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let want name = match only with None -> true | Some names -> List.mem name names

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let header title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n"

let pp_time = function
  | None -> "-"
  | Some t -> Printf.sprintf "%.4fs" t

(* ------------------------------------------------------------------ *)
(* Database families (scaling workloads)                               *)
(* ------------------------------------------------------------------ *)

(* q_xyy / q_xyy_full family: R(i, i mod g), S(j); all endogenous. *)
let xyy_db rows = Generate.chain_database ~rows

(* q1 family: R(i, i mod g), S(i); all endogenous. *)
let q1_db rows =
  let groups = max 1 (int_of_float (sqrt (float_of_int rows))) in
  let db = ref Database.empty in
  for i = 0 to rows - 1 do
    db := Database.add (Fact.of_ints "R" [ i; i mod groups ]) !db;
    db := Database.add (Fact.of_ints "S" [ i ]) !db
  done;
  !db

(* q_exists family: R(i), S(i, i mod g), T(i mod g). *)
let exists_db rows =
  let groups = max 1 (int_of_float (sqrt (float_of_int rows))) in
  let db = ref Database.empty in
  for i = 0 to rows - 1 do
    db := Database.add (Fact.of_ints "R" [ i ]) !db;
    db := Database.add (Fact.of_ints "S" [ i; i mod groups ]) !db
  done;
  for j = 0 to groups - 1 do
    db := Database.add (Fact.of_ints "T" [ j ]) !db
  done;
  !db

(* q_xyyz family: R(i, i mod g), S(j), T(±i). *)
let xyyz_db rows =
  let groups = max 1 (int_of_float (sqrt (float_of_int rows))) in
  let db = ref Database.empty in
  for i = 0 to rows - 1 do
    db := Database.add (Fact.of_ints "R" [ i; i mod groups ]) !db;
    db := Database.add (Fact.of_ints "T" [ (if i mod 2 = 0 then i else -i) ]) !db
  done;
  for j = 0 to groups - 1 do
    db := Database.add (Fact.of_ints "S" [ j ]) !db
  done;
  !db

(* Single-relation family: R(i, v) with repeating values. *)
let single_db rows =
  let db = ref Database.empty in
  for i = 0 to rows - 1 do
    db := Database.add (Fact.of_ints "R" [ i; i mod 7 ]) !db
  done;
  !db

let first_endo db = List.hd (Database.endogenous db)

let vid rel pos = Value_fn.id ~rel ~pos

let vmod rel pos =
  Value_fn.custom ~rel ~descr:"mod2" (fun args ->
      match Aggshap_relational.Value.as_int args.(pos) with
      | Some n -> Q.of_int (((n mod 2) + 2) mod 2)
      | None -> Q.zero)

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 classification                                         *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1 (Figure 1): classification and tractability matrix";
  Printf.printf "%-36s %-22s" "query" "class";
  List.iter
    (fun alpha ->
      let s = Aggregate.to_string alpha in
      Printf.printf " %-6s" (if String.length s > 6 then String.sub s 0 6 else s))
    Aggregate.all;
  print_newline ();
  List.iter
    (fun (name, q, expected) ->
      let cls = Hierarchy.classify q in
      assert (cls = expected);
      Printf.printf "%-36s %-22s" name (Hierarchy.cls_to_string cls);
      List.iter
        (fun alpha ->
          Printf.printf " %-6s"
            (if Core.Solver.within_frontier alpha q then "poly" else "#P"))
        Aggregate.all;
      print_newline ())
    Catalog.figure1

(* ------------------------------------------------------------------ *)
(* Generic scaling experiment: DP vs naive over a size sweep           *)
(* ------------------------------------------------------------------ *)

let scaling_table ~title ~sizes ~naive_cap ~make_db ~make_agg ~dp_shapley =
  header title;
  Printf.printf "%8s %8s %12s %12s %10s\n" "rows" "players" "dp time" "naive time" "agree";
  List.iter
    (fun rows ->
      let db = make_db rows in
      let a = make_agg () in
      let f = first_endo db in
      let dp_value, dp_time = time (fun () -> dp_shapley a db f) in
      let naive =
        if rows <= naive_cap then begin
          let v, t = time (fun () -> Core.Naive.shapley a db f) in
          Some (v, t)
        end
        else None
      in
      let agree =
        match naive with
        | Some (v, _) -> if Q.equal v dp_value then "ok" else "MISMATCH"
        | None -> "-"
      in
      Printf.printf "%8d %8d %12s %12s %10s\n" rows (Database.endo_size db)
        (pp_time (Some dp_time))
        (pp_time (Option.map snd naive))
        agree)
    sizes

(* E2: Theorem 4.1 — Max and CDist on the all-hierarchical q_xyy. *)
let e2 () =
  let sizes = if quick then [ 8; 12; 40 ] else [ 8; 10; 12; 14; 40; 100; 200 ] in
  scaling_table
    ~title:"E2 (Theorem 4.1): Max on all-hierarchical Qxyy(x) <- R(x,y), S(y)"
    ~sizes ~naive_cap:14 ~make_db:xyy_db
    ~make_agg:(fun () -> Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy)
    ~dp_shapley:Core.Minmax.shapley;
  let sizes = if quick then [ 8; 12; 40 ] else [ 8; 10; 12; 14; 40; 100 ] in
  scaling_table
    ~title:"E2b (Theorem 4.1): CDist on all-hierarchical Qxyy(x) <- R(x,y), S(y)"
    ~sizes ~naive_cap:14 ~make_db:xyy_db
    ~make_agg:(fun () -> Agg_query.make Aggregate.Count_distinct (vmod "R" 0) Catalog.q_xyy)
    ~dp_shapley:Core.Cdist.shapley

(* E3: Theorem 5.1 — Avg and Median on the q-hierarchical q_xyy_full. *)
let e3 () =
  let sizes = if quick then [ 8; 12; 16 ] else [ 8; 10; 12; 14; 16; 24; 32 ] in
  scaling_table
    ~title:"E3 (Theorem 5.1): Avg on q-hierarchical Qfull(x,y) <- R(x,y), S(y)"
    ~sizes ~naive_cap:14 ~make_db:xyy_db
    ~make_agg:(fun () -> Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy_full)
    ~dp_shapley:Core.Avg_quantile.shapley;
  scaling_table
    ~title:"E3b (Theorem 5.1): Median on q-hierarchical Qfull(x,y) <- R(x,y), S(y)"
    ~sizes ~naive_cap:14 ~make_db:xyy_db
    ~make_agg:(fun () -> Agg_query.make Aggregate.Median (vid "R" 0) Catalog.q_xyy_full)
    ~dp_shapley:Core.Avg_quantile.shapley

(* E4: Theorem 6.1 — Dup on the sq-hierarchical q1. *)
let e4 () =
  let sizes = if quick then [ 6; 10; 40 ] else [ 6; 8; 10; 40; 100; 160 ] in
  scaling_table
    ~title:"E4 (Theorem 6.1): Has-duplicates on sq-hierarchical Q1(x) <- R(x,y), S(x)"
    ~sizes ~naive_cap:10 ~make_db:q1_db
    ~make_agg:(fun () -> Agg_query.make Aggregate.Has_duplicates (vmod "R" 0) Catalog.q1_sq)
    ~dp_shapley:Core.Dup.shapley

(* E5: the hardness wall — Avg beyond the frontier is exponential. *)
let e5 () =
  header "E5 (Theorems 3.3/5.1): the frontier wall for Avg";
  Printf.printf
    "Same data, same aggregate; only the query's class differs.\n";
  Printf.printf "%8s %18s %18s\n" "rows" "Qxyy (naive)" "Qfull (poly DP)";
  let sizes = if quick then [ 8; 12; 14 ] else [ 8; 10; 12; 14; 16 ] in
  List.iter
    (fun rows ->
      let db = xyy_db rows in
      let hard = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy in
      let easy = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy_full in
      let f = first_endo db in
      let _, t_hard = time (fun () -> Core.Naive.shapley hard db f) in
      let _, t_easy = time (fun () -> Core.Avg_quantile.shapley easy db f) in
      Printf.printf "%8d %18s %18s\n" rows (pp_time (Some t_hard)) (pp_time (Some t_easy)))
    sizes

(* E6: closed formulas vs generic DPs (Props 4.2, 4.4, 5.2). *)
let e6 () =
  header "E6 (Props 4.2/4.4/5.2): closed formulas vs generic DPs, single atom";
  Printf.printf "%8s %12s %12s %12s %12s %8s\n" "rows" "max closed" "max DP" "avg closed"
    "avg DP" "agree";
  let q = Parser.parse_query_exn "Q(u, v) <- R(u, v)" in
  let sizes = if quick then [ 10; 40 ] else [ 10; 20; 40; 60 ] in
  List.iter
    (fun rows ->
      let db = single_db rows in
      let f = first_endo db in
      let a_max = Agg_query.make Aggregate.Max (vid "R" 1) q in
      let a_avg = Agg_query.make Aggregate.Avg (vid "R" 1) q in
      let v1, t1 = time (fun () -> Core.Closed_form.max_single_atom a_max db f) in
      let v2, t2 = time (fun () -> Core.Minmax.shapley a_max db f) in
      let v3, t3 = time (fun () -> Core.Closed_form.avg_single_atom a_avg db f) in
      let v4, t4 = time (fun () -> Core.Avg_quantile.shapley a_avg db f) in
      let agree = if Q.equal v1 v2 && Q.equal v3 v4 then "ok" else "MISMATCH" in
      Printf.printf "%8d %12s %12s %12s %12s %8s\n" rows (pp_time (Some t1))
        (pp_time (Some t2)) (pp_time (Some t3)) (pp_time (Some t4)) agree)
    sizes

(* E7: Monte-Carlo approximation error against exact ground truth. *)
let e7 () =
  header "E7 (Section 8): Monte-Carlo error vs samples (Avg on Qfull)";
  let db = xyy_db 14 in
  let a = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy_full in
  let f = first_endo db in
  let exact = Q.to_float (Core.Avg_quantile.shapley a db f) in
  Printf.printf "exact Shapley = %.6f\n" exact;
  Printf.printf "%10s %12s %12s %12s\n" "samples" "estimate" "std err" "abs error";
  let sweeps = if quick then [ 100; 1000 ] else [ 100; 400; 1600; 6400; 25600 ] in
  List.iter
    (fun samples ->
      let est = Core.Monte_carlo.shapley ~seed:11 ~samples a db f in
      Printf.printf "%10d %12.6f %12.6f %12.6f\n" samples est.Core.Monte_carlo.mean
        est.Core.Monte_carlo.std_error
        (abs_float (est.Core.Monte_carlo.mean -. exact)))
    sweeps

(* E8: Prop 7.3 — the atom τ is localized on decides the complexity. *)
let e8 () =
  header "E8 (Prop 7.3): Avg on Qxyyz(x,z) <- R(x,y), S(y), T(z)";
  Printf.printf "τ on R (first atom): #P-hard, naive only. τ on T (last atom): polynomial.\n";
  Printf.printf "%8s %8s %16s %16s %8s\n" "rows" "players" "naive (τ on R)" "poly (τ on T)"
    "agree";
  let tau_t = Value_fn.relu ~rel:"T" ~pos:0 in
  let sizes = if quick then [ 6; 8 ] else [ 6; 8; 30; 60 ] in
  List.iter
    (fun rows ->
      let db = xyyz_db rows in
      let f = first_endo db in
      let poly_v, poly_t = time (fun () -> Core.Localization.avg_on_t_shapley tau_t db f) in
      let naive =
        if rows <= 8 then begin
          let a = Agg_query.make Aggregate.Avg tau_t Core.Localization.q_xyyz in
          let v, t = time (fun () -> Core.Naive.shapley a db f) in
          Some (v, t)
        end
        else None
      in
      let agree =
        match naive with
        | Some (v, _) -> if Q.equal v poly_v then "ok" else "MISMATCH"
        | None -> "-"
      in
      Printf.printf "%8d %8d %16s %16s %8s\n" rows (Database.endo_size db)
        (pp_time (Option.map snd naive))
        (pp_time (Some poly_t)) agree)
    sizes

(* E9: Sum/Count over ∃-hierarchical queries (prior work baseline). *)
let e9 () =
  let sizes = if quick then [ 8; 12; 40 ] else [ 8; 30; 100; 200 ] in
  scaling_table
    ~title:"E9 (Theorem 3.1, positive side): Sum on ∃-hierarchical Qe(x) <- R(x), S(x,y), T(y)"
    ~sizes ~naive_cap:8 ~make_db:exists_db
    ~make_agg:(fun () -> Agg_query.make Aggregate.Sum (vid "R" 0) Catalog.q_exists)
    ~dp_shapley:Core.Sum_count.shapley

(* E10: the #Set-Cover ⇒ Avg reduction, end to end. *)
let e10 () =
  header "E10 (Lemma D.3): #Set-Cover solved through the Avg-Shapley oracle";
  Printf.printf "%-30s %10s %10s %10s %10s\n" "instance" "brute" "via shap" "agree" "time";
  let instances =
    [ ("X=3, Y={12,23,3}", Setcover.make ~universe:3 [ [ 1; 2 ]; [ 2; 3 ]; [ 3 ] ]);
      ("X=4, Y={12,34,23,4}", Setcover.make ~universe:4 [ [ 1; 2 ]; [ 3; 4 ]; [ 2; 3 ]; [ 4 ] ]);
      ("random(4,4)", Setcover.random ~seed:42 ~universe:4 ~sets:4 ~max_set_size:3 ());
    ]
  in
  List.iter
    (fun (name, sc) ->
      let brute = Setcover.count_covers sc in
      let via, t = time (fun () -> Avg_red.count_covers_via_shapley sc) in
      Printf.printf "%-30s %10s %10s %10s %10s\n" name (B.to_string brute)
        (B.to_string via)
        (if B.equal brute via then "ok" else "MISMATCH")
        (pp_time (Some t)))
    instances

(* E11: the Qnt gadget simulates the set-cover game. *)
let e11 () =
  header "E11 (Lemma D.4): quantile gadget simulates the set-cover game";
  let sc = Setcover.make ~universe:3 [ [ 1; 2 ]; [ 2; 3 ]; [ 3 ] ] in
  Printf.printf "%-10s %16s %16s %8s\n" "quantile" "gadget shapley" "game shapley" "agree";
  List.iter
    (fun quantile ->
      let game = Qnt_red.cover_game sc in
      let via = Qnt_red.shapley_via_gadget sc quantile 1 in
      let direct = Core.Game.shapley game 0 in
      Printf.printf "%-10s %16s %16s %8s\n" (Q.to_string quantile) (Q.to_string via)
        (Q.to_string direct)
        (if Q.equal via direct then "ok" else "MISMATCH"))
    [ Q.half; Q.of_ints 1 3; Q.of_ints 2 3 ]

(* E12: the permanent via Dup-Shapley. *)
let e12 () =
  header "E12 (Lemma E.2): permanent via the Dup-Shapley oracle";
  Printf.printf "%-26s %10s %10s %8s %10s\n" "graph" "brute" "via shap" "agree" "time";
  let graphs =
    [ ("C4 (4-cycle)", Setcover.make ~universe:4 [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 1 ] ]);
      ("K22", Setcover.make ~universe:4 [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]);
    ]
    @ (if quick then [] else [ ("C6 (6-cycle)",
         Setcover.make ~universe:6 [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 5 ]; [ 5; 6 ]; [ 6; 1 ] ]) ])
  in
  List.iter
    (fun (name, sc) ->
      let brute = Setcover.count_exact_covers sc in
      let via, t = time (fun () -> Perm_red.permanent_via_shapley sc) in
      Printf.printf "%-26s %10s %10s %8s %10s\n" name (B.to_string brute) (B.to_string via)
        (if B.equal brute via then "ok" else "MISMATCH")
        (pp_time (Some t)))
    graphs

(* E13: the batch engine — all-facts shapley_all, sequential (seed path)
   vs shared-DP caching vs domain-parallel, on the scaling families. *)
let e13 () =
  header "E13 (batch engine): all-facts shapley_all — seq vs cached vs parallel";
  let jobs = max 2 (Core.Pool.default_jobs ()) in
  Printf.printf
    "Parallel runs use %d worker domains (recommended for this machine: %d);\n\
     all variants must return bit-identical rational values (column 'same').\n\
     c-spd = seq / cached (jobs=1); p-spd = seq / (par+cache). On a\n\
     single-core host p-spd only measures domain overhead.\n" jobs
    (Core.Pool.default_jobs ());
  let run_family ~title ~sizes ~make_db ~make_agg ~seed_all =
    Printf.printf "\n-- %s --\n" title;
    Printf.printf "%6s %8s %10s %10s %10s %10s %7s %7s %6s  %s\n" "rows" "players"
      "seq" "cached" "par" "par+cache" "c-spd" "p-spd" "same" "cache";
    List.iter
      (fun rows ->
        let db = make_db rows in
        let a = make_agg () in
        let seq, t_seq = time (fun () -> seed_all a db) in
        let (cached, stats_c), t_cached =
          time (fun () -> Core.Batch.shapley_all ~jobs:1 ~cache:true a db)
        in
        let (par, _), t_par =
          time (fun () -> Core.Batch.shapley_all ~jobs ~cache:false a db)
        in
        let (parc, _), t_parc =
          time (fun () -> Core.Batch.shapley_all ~jobs ~cache:true a db)
        in
        let same =
          List.for_all
            (fun other ->
              List.length other = List.length seq
              && List.for_all2
                   (fun (f1, v1) (f2, v2) -> Fact.equal f1 f2 && Q.equal v1 v2)
                   seq other)
            [ cached; par; parc ]
        in
        let cache_s =
          match stats_c.Core.Batch.cache with
          | Some m -> Core.Memo.stats_to_string m
          | None -> "-"
        in
        Printf.printf "%6d %8d %10s %10s %10s %10s %6.2fx %6.2fx %6s  %s\n" rows
          (Database.endo_size db) (pp_time (Some t_seq)) (pp_time (Some t_cached))
          (pp_time (Some t_par)) (pp_time (Some t_parc))
          (t_seq /. t_cached) (t_seq /. t_parc)
          (if same then "ok" else "MISMATCH")
          cache_s)
      sizes
  in
  run_family
    ~title:"Max on Qxyy(x) <- R(x,y), S(y)  (q_xyy family, min/max table DP)"
    ~sizes:(if quick then [ 12; 40 ] else [ 20; 60; 120; 200 ])
    ~make_db:xyy_db
    ~make_agg:(fun () -> Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy)
    ~seed_all:Core.Minmax.shapley_all;
  run_family
    ~title:"CDist on Qxyy(x) <- R(x,y), S(y)  (q_xyy family, per-value Boolean DP)"
    ~sizes:(if quick then [ 12; 40 ] else [ 20; 60; 100 ])
    ~make_db:xyy_db
    ~make_agg:(fun () -> Agg_query.make Aggregate.Count_distinct (vmod "R" 0) Catalog.q_xyy)
    ~seed_all:Core.Cdist.shapley_all;
  run_family
    ~title:"Has-duplicates on Q1(x) <- R(x,y), S(x)  (q1 family, P0/P1 DP)"
    ~sizes:(if quick then [ 10; 30 ] else [ 40; 100; 160 ])
    ~make_db:q1_db
    ~make_agg:(fun () -> Agg_query.make Aggregate.Has_duplicates (vmod "R" 0) Catalog.q1_sq)
    ~seed_all:Core.Dup.shapley_all

(* E14: kernel instrumentation — wall time plus arithmetic/convolution
   kernel counters for a fixed workload set. This is the machine-readable
   bench baseline: with [--json FILE] the rows are also written out as a
   BENCH_v1 report (validated in CI by bench/validate.exe). *)
let e14 () =
  header "E14 (kernels): arithmetic/convolution kernel counters per workload";
  Printf.printf
    "Counters are process-wide per workload (stats reset before each run).\n";
  Printf.printf "%-24s %6s %8s %10s %12s %12s %10s %10s\n" "workload" "rows"
    "players" "wall" "mul(school)" "mul(small)" "acc_mul" "convolve";
  let results = ref [] in
  let run experiment workload sizes make_db act =
    List.iter
      (fun rows ->
        let db = make_db rows in
        let players = Database.endo_size db in
        B.reset_stats ();
        Core.Tables.reset_stats ();
        Database.reset_stats ();
        Plan.reset_stats ();
        let (), wall = time (fun () -> act db) in
        let bs = B.stats () in
        let ts = Core.Tables.stats () in
        let ds = Database.stats () in
        let ps = Plan.stats () in
        Printf.printf "%-24s %6d %8d %9.4fs %12d %12d %10d %10d\n" workload rows
          players wall bs.B.mul_schoolbook bs.B.mul_small bs.B.acc_mul
          ts.Core.Tables.convolve;
        let open Bench_json in
        let kernels =
          Obj
            [ ("mul_schoolbook", Int bs.B.mul_schoolbook);
              ("mul_karatsuba", Int bs.B.mul_karatsuba);
              ("mul_small", Int bs.B.mul_small);
              ("sqr", Int bs.B.sqr);
              ("divmod", Int bs.B.divmod);
              ("gcd", Int bs.B.gcd);
              ("acc_mul", Int bs.B.acc_mul);
              ("promotions", Int bs.B.promotions);
              ("demotions", Int bs.B.demotions);
              ("convolve", Int ts.Core.Tables.convolve);
              ("convolve_small", Int ts.Core.Tables.convolve_small);
              ("convolve_ntt", Int ts.Core.Tables.convolve_ntt);
              ("convolve_rat", Int ts.Core.Tables.convolve_rat);
              ("tree_folds", Int ts.Core.Tables.tree_folds);
              ("weighted_sums", Int ts.Core.Tables.weighted_sums);
              ("plan_compiles", Int ps.Plan.plan_compiles);
              ("index_builds", Int ds.Database.index_builds);
              ("index_probes", Int ds.Database.index_probes);
              ("rel_scans", Int ds.Database.rel_scans) ]
        in
        results :=
          Obj
            [ ("experiment", String experiment);
              ("workload", String workload);
              ("n", Int rows);
              ("players", Int players);
              ("wall_s", Float wall);
              ("kernels", kernels) ]
          :: !results)
      sizes
  in
  let q_bool = Cq.make_boolean Catalog.q_xyy in
  run "E14" "bool_shapley_q_xyy"
    (if quick then [ 60; 120 ] else [ 100; 200; 400; 800 ])
    xyy_db
    (fun db -> ignore (Core.Boolean_dp.shapley q_bool db (first_endo db)));
  run "E14" "max_batch_q_xyy"
    (if quick then [ 12; 40 ] else [ 60; 120; 200 ])
    xyy_db
    (fun db ->
      let a = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy in
      ignore (Core.Batch.shapley_all ~jobs:1 ~cache:true a db));
  run "E14" "dup_batch_q1"
    (if quick then [ 10; 30 ] else [ 40; 100; 160 ])
    q1_db
    (fun db ->
      let a = Agg_query.make Aggregate.Has_duplicates (vmod "R" 0) Catalog.q1_sq in
      ignore (Core.Batch.shapley_all ~jobs:1 ~cache:true a db));
  List.rev !results

(* E15: incremental maintenance under churn. A live Incr.Session absorbs
   a stream of updates (delete/re-insert pairs over ~1% of the players)
   against the from-scratch baseline: re-opening a cold session per step,
   which re-runs every per-block DP on the same code path — so the
   comparison isolates exactly the reuse, not engine differences. (The
   pre-session Batch engine is shown at small n for transparency.)
   Every step's results are checked bit-identical between the two paths.

   The headline family is Sum — the linear engine caches one membership
   game per answer and an update dirties only the games its fact's atoms
   match, so the per-step cost is ~independent of database size. The Max
   family (generic engine) is deliberately kept small: its DP-table memo
   is content-addressed, so steps stay *correct* without any flush, but
   an update perturbs every fact's own-block recombination, which
   dominates — churn reuse is marginal there (see DESIGN.md §5). *)
let e15 () =
  header "E15 (incremental maintenance): live session vs from-scratch under ~1% churn";
  Printf.printf "%-22s %6s %8s %6s %12s %14s %12s %9s %7s\n" "workload" "rows"
    "players" "steps" "incr/step" "scratch/step" "batch/step" "speedup" "agree";
  let results = ref [] in
  let module Session = Aggshap_incr.Session in
  let module Update = Aggshap_incr.Update in
  let same_results r1 r2 =
    List.equal (fun (f1, v1) (f2, v2) -> Fact.equal f1 f2 && Q.equal v1 v2) r1 r2
  in
  let emit workload rows players steps wall extra =
    let open Bench_json in
    let bs = B.stats () in
    let ts = Core.Tables.stats () in
    results :=
      Obj
        ([ ("experiment", String "E15");
           ("workload", String workload);
           ("n", Int rows);
           ("players", Int players);
           ("steps", Int steps);
           ("wall_s", Float wall) ]
        @ extra
        @ [ ( "kernels",
              Obj
                [ ("mul_schoolbook", Int bs.B.mul_schoolbook);
                  ("mul_karatsuba", Int bs.B.mul_karatsuba);
                  ("mul_small", Int bs.B.mul_small);
                  ("acc_mul", Int bs.B.acc_mul);
                  ("convolve", Int ts.Core.Tables.convolve);
                  ("convolve_rat", Int ts.Core.Tables.convolve_rat);
                  ("tree_folds", Int ts.Core.Tables.tree_folds) ] ) ])
      :: !results
  in
  let run_family ~label ~agg ~sizes =
  List.iter
    (fun rows ->
      let db0 = xyy_db rows in
      let a = Agg_query.make agg (vid "R" 0) Catalog.q_xyy in
      let players = Database.endo_size db0 in
      (* ~1% churn, in delete/re-insert pairs so the database returns to
         its base state and sizes stay comparable across steps. *)
      let pairs = Stdlib.max 1 (players / 200) in
      let victims = List.filteri (fun i _ -> i < pairs) (Database.endogenous db0) in
      let ops =
        List.concat_map
          (fun f -> [ Update.Delete f; Update.Insert (f, Database.Endogenous) ])
          victims
      in
      let steps = List.length ops in
      (* Live session: build once (untimed), then absorb the stream. *)
      let session = Session.open_ ~jobs:1 a db0 in
      ignore (Session.shapley_all session);
      B.reset_stats ();
      Core.Tables.reset_stats ();
      let incr_results, t_incr =
        time (fun () ->
            List.map
              (fun op ->
                Session.apply session op;
                Session.shapley_all session)
              ops)
      in
      emit ("incr_" ^ label) rows players steps t_incr [];
      (* From-scratch baseline: a cold session per step. *)
      B.reset_stats ();
      Core.Tables.reset_stats ();
      let db = ref db0 in
      let scratch_results, t_scratch =
        time (fun () ->
            List.map
              (fun op ->
                (match op with
                 | Update.Insert (f, p) -> db := Database.add ~provenance:p f !db
                 | Update.Delete f -> db := Database.remove f !db
                 | Update.Set_tau _ -> ());
                let cold = Session.open_ ~jobs:1 a !db in
                Session.shapley_all cold)
              ops)
      in
      let speedup = t_scratch /. Stdlib.max 1e-9 t_incr in
      emit ("scratch_" ^ label) rows players steps t_scratch
        [ ("speedup_vs_incr", Bench_json.Float speedup) ];
      (* Old per-batch engine, small n only: it is much slower than even
         the cold session, so the speedup above is the conservative one. *)
      let t_batch =
        if players <= 150 then begin
          let db = ref db0 in
          let (), t =
            time (fun () ->
                List.iter
                  (fun op ->
                    (match op with
                     | Update.Insert (f, p) -> db := Database.add ~provenance:p f !db
                     | Update.Delete f -> db := Database.remove f !db
                     | Update.Set_tau _ -> ());
                    ignore (Core.Batch.shapley_all ~jobs:1 ~cache:true a !db))
                  ops)
          in
          Some (t /. float_of_int steps)
        end
        else None
      in
      let agree = List.for_all2 same_results incr_results scratch_results in
      Printf.printf "%-22s %6d %8d %6d %11.5fs %13.5fs %12s %8.1fx %7s\n"
        label rows players steps
        (t_incr /. float_of_int steps)
        (t_scratch /. float_of_int steps)
        (pp_time t_batch) speedup
        (if agree then "ok" else "MISMATCH");
      if not agree then failwith "E15: incremental and from-scratch results diverge")
    sizes
  in
  (* Linear engine: the headline. ~1% churn at every size. *)
  run_family ~label:"churn_q_xyy" ~agg:Aggregate.Sum
    ~sizes:(if quick then [ 80; 800 ] else [ 200; 400; 800 ]);
  (* Generic engine: kept small — a churn step re-runs the per-fact
     recombination for the whole block, so there is little to reuse and
     the cost per step is essentially the cold cost (see DESIGN.md §5). *)
  run_family ~label:"churn_q_xyy_max" ~agg:Aggregate.Max
    ~sizes:(if quick then [ 40 ] else [ 60 ]);
  List.rev !results

(* E16: engine root-block parallelism. The generic Fig. 2 engine can fan
   the blocks of the top-level root partition across Pool domains
   (Engine.set_block_jobs); the merge preserves block order and the
   arithmetic is exact, so results are bit-identical — checked here on
   every row — and the report records wall time with blocks off and on. *)
let e16 () =
  header "E16 (engine parallelism): top-level root blocks sequential vs fanned out";
  Printf.printf "%-24s %6s %8s %6s %10s %10s %9s %7s\n" "workload" "rows" "players"
    "jobs" "seq" "par" "speedup" "agree";
  let results = ref [] in
  let emit workload rows players wall extra =
    let open Bench_json in
    let bs = B.stats () in
    let ts = Core.Tables.stats () in
    let es = Core.Engine.stats () in
    results :=
      Obj
        ([ ("experiment", String "E16");
           ("workload", String workload);
           ("n", Int rows);
           ("players", Int players);
           ("wall_s", Float wall) ]
        @ extra
        @ [ ( "kernels",
              Obj
                [ ("mul_small", Int bs.B.mul_small);
                  ("acc_mul", Int bs.B.acc_mul);
                  ("convolve", Int ts.Core.Tables.convolve);
                  ("engine_nodes", Int es.Core.Engine.nodes);
                  ("engine_merges", Int es.Core.Engine.merges);
                  ("engine_parallel_merges", Int es.Core.Engine.parallel_merges) ] ) ])
      :: !results
  in
  let jobs = Stdlib.max 2 (Core.Pool.default_jobs ()) in
  let a = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy in
  let reset () =
    B.reset_stats ();
    Core.Tables.reset_stats ();
    Core.Engine.reset_stats ()
  in
  List.iter
    (fun rows ->
      let db = xyy_db rows in
      let players = Database.endo_size db in
      reset ();
      let seq, t_seq = time (fun () -> Core.Minmax.sum_k a db) in
      emit "engine_blocks_seq" rows players t_seq [];
      reset ();
      Core.Engine.set_block_jobs jobs;
      let par, t_par =
        Fun.protect
          ~finally:(fun () -> Core.Engine.set_block_jobs 1)
          (fun () -> time (fun () -> Core.Minmax.sum_k a db))
      in
      let agree = Array.length seq = Array.length par && Array.for_all2 Q.equal seq par in
      emit "engine_blocks_par" rows players t_par
        [ ("block_jobs", Bench_json.Int jobs);
          ("speedup_vs_seq", Bench_json.Float (t_seq /. Stdlib.max 1e-9 t_par)) ];
      Printf.printf "%-24s %6d %8d %6d %9.4fs %9.4fs %8.1fx %7s\n" "max_sumk_q_xyy" rows
        players jobs t_seq t_par
        (t_seq /. Stdlib.max 1e-9 t_par)
        (if agree then "ok" else "MISMATCH");
      if not agree then failwith "E16: parallel block merge diverged from sequential")
    (if quick then [ 60 ] else [ 200; 400 ]);
  List.rev !results

(* E18: the RNS/NTT convolution tier, before vs after. Each workload is
   solved twice over identical inputs — once with the tier disabled
   ([Tables.ntt_threshold := max_int], so every convolution takes the
   classic schoolbook/Karatsuba scatter) and once with the default
   three-tier dispatch — and the two result sets must be bit-identical:
   the CRT magnitude bound makes the NTT tier exact, not approximate
   (DESIGN.md §8). Speedup is classic wall over NTT wall. *)
let e18 () =
  header "E18 (NTT tier): classic vs RNS/NTT convolution, bit-identical";
  Printf.printf "%-18s %6s %8s %11s %11s %9s %10s %7s\n" "workload" "rows" "players"
    "classic" "ntt" "speedup" "ntt_convs" "agree";
  let results = ref [] in
  let emit workload rows players wall extra kernels =
    let open Bench_json in
    results :=
      Obj
        ([ ("experiment", String "E18");
           ("workload", String workload);
           ("n", Int rows);
           ("players", Int players);
           ("wall_s", Float wall) ]
        @ extra @ kernels)
      :: !results
  in
  let run workload sizes make_db make_agg =
    List.iter
      (fun rows ->
        let db = make_db rows in
        let a = make_agg () in
        let players = Database.endo_size db in
        let solve () = fst (Core.Batch.shapley_all ~jobs:1 ~cache:true a db) in
        let saved = !Core.Tables.ntt_threshold in
        Core.Tables.ntt_threshold := max_int;
        B.reset_stats ();
        Core.Tables.reset_stats ();
        let classic, t_classic =
          Fun.protect
            ~finally:(fun () -> Core.Tables.ntt_threshold := saved)
            (fun () -> time solve)
        in
        let bs_classic = B.stats () in
        let ts_classic = Core.Tables.stats () in
        B.reset_stats ();
        Core.Tables.reset_stats ();
        let ntt, t_ntt = time solve in
        let bs = B.stats () in
        let ts = Core.Tables.stats () in
        let same =
          List.equal
            (fun (f1, v1) (f2, v2) -> Fact.equal f1 f2 && Q.equal v1 v2)
            classic ntt
        in
        let speedup = t_classic /. Stdlib.max 1e-9 t_ntt in
        Printf.printf "%-18s %6d %8d %10.4fs %10.4fs %8.2fx %10d %7s\n" workload rows
          players t_classic t_ntt speedup ts.Core.Tables.convolve_ntt
          (if same then "ok" else "MISMATCH");
        if not same then failwith "E18: NTT and classic convolution results diverge";
        let kernels_of bs ts =
          [ ( "kernels",
              Bench_json.(
                Obj
                  [ ("mul_schoolbook", Int bs.B.mul_schoolbook);
                    ("mul_karatsuba", Int bs.B.mul_karatsuba);
                    ("mul_small", Int bs.B.mul_small);
                    ("promotions", Int bs.B.promotions);
                    ("demotions", Int bs.B.demotions);
                    ("convolve", Int ts.Core.Tables.convolve);
                    ("convolve_small", Int ts.Core.Tables.convolve_small);
                    ("convolve_ntt", Int ts.Core.Tables.convolve_ntt);
                    ("tree_folds", Int ts.Core.Tables.tree_folds) ]) ) ]
        in
        emit (workload ^ ":classic") rows players t_classic []
          (kernels_of bs_classic ts_classic);
        emit (workload ^ ":ntt") rows players t_ntt
          [ ("speedup_vs_classic", Bench_json.Float speedup) ]
          (kernels_of bs ts))
      sizes
  in
  run "max_q_xyy"
    (if quick then [ 40 ] else [ 60; 120; 200 ])
    xyy_db
    (fun () -> Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy);
  run "dup_q1"
    (if quick then [ 30 ] else [ 40; 100; 160 ])
    q1_db
    (fun () -> Agg_query.make Aggregate.Has_duplicates (vmod "R" 0) Catalog.q1_sq);
  List.rev !results

(* E19: indexed storage and the compiled join planner, before vs after.
   Each workload is solved twice over identical inputs — once with the
   planner and secondary indexes disabled ([Plan.enabled := false]: the
   legacy scan evaluator and the rescanning partition) and once with
   the default indexed stack — and the two Shapley vectors must be
   bit-identical: the planner changes only the enumeration order of
   homomorphisms, never the set, and the indexed partition produces the
   same blocks in the same order (DESIGN.md §9). Speedup is legacy wall
   over indexed wall. *)
let e19 () =
  header "E19 (join planner): legacy scan vs indexed evaluation, bit-identical";
  Printf.printf "%-18s %6s %8s %11s %11s %9s %11s %7s\n" "workload" "rows" "players"
    "legacy" "indexed" "speedup" "idx_probes" "agree";
  let results = ref [] in
  let emit workload rows players wall extra kernels =
    let open Bench_json in
    results :=
      Obj
        ([ ("experiment", String "E19");
           ("workload", String workload);
           ("n", Int rows);
           ("players", Int players);
           ("wall_s", Float wall) ]
        @ extra @ kernels)
      :: !results
  in
  let reset () =
    B.reset_stats ();
    Core.Tables.reset_stats ();
    Database.reset_stats ();
    Plan.reset_stats ()
  in
  let run workload sizes make_db make_agg =
    List.iter
      (fun rows ->
        let db = make_db rows in
        let a = make_agg () in
        let players = Database.endo_size db in
        let solve () = fst (Core.Batch.shapley_all ~jobs:1 ~cache:true a db) in
        reset ();
        Plan.enabled := false;
        let legacy, t_legacy =
          Fun.protect ~finally:(fun () -> Plan.enabled := true) (fun () -> time solve)
        in
        let ds_legacy = Database.stats () in
        let ps_legacy = Plan.stats () in
        reset ();
        let indexed, t_indexed = time solve in
        let ds = Database.stats () in
        let ps = Plan.stats () in
        let same =
          List.equal
            (fun (f1, v1) (f2, v2) -> Fact.equal f1 f2 && Q.equal v1 v2)
            legacy indexed
        in
        let speedup = t_legacy /. Stdlib.max 1e-9 t_indexed in
        Printf.printf "%-18s %6d %8d %10.4fs %10.4fs %8.2fx %11d %7s\n" workload rows
          players t_legacy t_indexed speedup ds.Database.index_probes
          (if same then "ok" else "MISMATCH");
        if not same then failwith "E19: indexed and legacy evaluation diverge";
        let kernels_of (ds : Database.stats) (ps : Plan.stats) =
          [ ( "kernels",
              Bench_json.(
                Obj
                  [ ("plan_compiles", Int ps.Plan.plan_compiles);
                    ("index_builds", Int ds.Database.index_builds);
                    ("index_probes", Int ds.Database.index_probes);
                    ("rel_scans", Int ds.Database.rel_scans) ]) ) ]
        in
        emit (workload ^ ":legacy") rows players t_legacy []
          (kernels_of ds_legacy ps_legacy);
        emit (workload ^ ":indexed") rows players t_indexed
          [ ("speedup_vs_legacy", Bench_json.Float speedup) ]
          (kernels_of ds ps))
      sizes
  in
  run "dup_q1"
    (if quick then [ 30 ] else [ 40; 100; 160 ])
    q1_db
    (fun () -> Agg_query.make Aggregate.Has_duplicates (vmod "R" 0) Catalog.q1_sq);
  run "avg_q_xyy_full"
    (if quick then [ 12 ] else [ 12; 16; 24 ])
    xyy_db
    (fun () -> Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy_full);
  run "median_q_xyy_full"
    (if quick then [ 12 ] else [ 12; 16 ])
    xyy_db
    (fun () -> Agg_query.make Aggregate.Median (vid "R" 0) Catalog.q_xyy_full);
  List.rev !results

(* E20: the knowledge-compilation tier vs naive enumeration beyond the
   frontier. The RST family instantiates the canonical non-hierarchical
   pattern Q() <- R(x), T(x,y), S(y): T is mostly a matching (plus two
   cross edges so lineage is genuinely shared), which keeps the d-DNNF
   near-linear while naive enumeration pays 2^n per fact. Both tiers
   are exact, so wherever naive runs the values must be bit-identical
   — a MISMATCH fails the whole bench. The full run additionally
   asserts the headline: at n >= 20 players the compiled tier beats a
   single naive evaluation by >= 10x even while answering for *every*
   fact. *)
let e20 () =
  header "E20 (KC tier): d-DNNF knowledge compilation vs naive beyond the frontier";
  Printf.printf
    "naive column is one fact (2^n subsets); kc column is ALL facts through\n\
     one shared compilation. naive(all) cross-checks the full vector at small n.\n";
  Printf.printf "%-14s %6s %8s %12s %12s %9s %7s %7s %7s\n" "workload" "m" "players"
    "naive(1)" "kc(all)" "speedup" "nodes" "wmc" "agree";
  let module Lineage = Aggshap_lineage.Lineage in
  let module Ddnnf = Aggshap_lineage.Ddnnf in
  let q_rst = Parser.parse_query_exn "Q() <- R(x), T(x, y), S(y)" in
  (* m R-facts, m S-facts, m matching T-facts + 2 cross edges:
     n = 3m + 2 players, all endogenous. *)
  let rst_db m =
    let db = ref Database.empty in
    for i = 0 to m - 1 do
      db := Database.add (Fact.of_ints "R" [ i ]) !db;
      db := Database.add (Fact.of_ints "S" [ i ]) !db;
      db := Database.add (Fact.of_ints "T" [ i; i ]) !db
    done;
    for i = 0 to Stdlib.min 1 (m - 1) do
      db := Database.add (Fact.of_ints "T" [ i; (i + 1) mod m ]) !db
    done;
    !db
  in
  let results = ref [] in
  let naive_cap = if quick then 14 else 20 in
  let run workload alpha tau sizes =
    List.iter
      (fun m ->
        let db = rst_db m in
        let a = Agg_query.make alpha tau q_rst in
        let players = Database.endo_size db in
        let f = first_endo db in
        Ddnnf.reset_stats ();
        let kc_all, t_kc = time (fun () -> Lineage.shapley_all a db) in
        let ks = Ddnnf.stats () in
        let naive =
          if players <= naive_cap then
            Some (time (fun () -> Core.Naive.shapley a db f))
          else None
        in
        (* Bit-identity: the single naive fact always; the full vector
           where n is small enough for n·2^n. *)
        let kc_lookup fact =
          match List.find_opt (fun (g, _) -> Fact.equal g fact) kc_all with
          | Some (_, v) -> v
          | None -> failwith "E20: kc result missing a fact"
        in
        let agree =
          match naive with
          | Some (v, _) ->
            Q.equal v (kc_lookup f)
            && (players > 14
                || List.for_all
                     (fun g -> Q.equal (Core.Naive.shapley a db g) (kc_lookup g))
                     (Database.endogenous db))
          | None -> true
        in
        let speedup =
          match naive with
          | Some (_, t_n) -> Some (t_n /. Stdlib.max 1e-9 t_kc)
          | None -> None
        in
        Printf.printf "%-14s %6d %8d %12s %12s %8s %7d %7d %7s\n" workload m players
          (pp_time (Option.map snd naive))
          (pp_time (Some t_kc))
          (match speedup with Some s -> Printf.sprintf "%.1fx" s | None -> "-")
          ks.Ddnnf.nodes ks.Ddnnf.wmc_passes
          (if agree then (if naive = None then "-" else "ok") else "MISMATCH");
        if not agree then
          failwith "E20: knowledge-compilation and naive enumeration diverge";
        (match speedup with
         | Some s when (not quick) && players >= 20 && s < 10.0 ->
           failwith
             (Printf.sprintf
                "E20: kc speedup %.1fx below the 10x bar at n=%d" s players)
         | _ -> ());
        let open Bench_json in
        let kernels =
          Obj
            [ ("ddnnf_nodes", Int ks.Ddnnf.nodes);
              ("ddnnf_cache_hits", Int ks.Ddnnf.cache_hits);
              ("ddnnf_cache_misses", Int ks.Ddnnf.cache_misses);
              ("ddnnf_compiles", Int ks.Ddnnf.compiles);
              ("ddnnf_wmc_passes", Int ks.Ddnnf.wmc_passes) ]
        in
        results :=
          Obj
            ([ ("experiment", String "E20");
               ("workload", String (workload ^ ":kc"));
               ("n", Int m);
               ("players", Int players);
               ("wall_s", Float t_kc) ]
            @ (match speedup with
               | Some s -> [ ("speedup_vs_naive", Float s) ]
               | None -> [])
            @ [ ("kernels", kernels) ])
          :: !results;
        match naive with
        | Some (_, t_n) ->
          results :=
            Obj
              [ ("experiment", String "E20");
                ("workload", String (workload ^ ":naive"));
                ("n", Int m);
                ("players", Int players);
                ("wall_s", Float t_n);
                ("kernels", Obj []) ]
            :: !results
        | None -> ())
      sizes
  in
  run "count_rst" Aggregate.Count (Value_fn.const ~rel:"R" Q.one)
    (if quick then [ 3; 4 ] else [ 3; 4; 6; 8; 10; 12 ]);
  run "max_rst" Aggregate.Max (Value_fn.const ~rel:"R" Q.one)
    (if quick then [ 3 ] else [ 3; 4; 6 ]);
  List.rev !results

(* E21: the solve planner (`Auto) vs each forced exact tier on E20's
   beyond-frontier RST family. The planner must pick a route whose
   values are bit-identical to every forced exact tier (checked here —
   a MISMATCH fails the bench) and whose wall-clock stays within 1.2x
   of the best forced tier (bench/validate.exe gates that on the
   emitted [best_forced_s] field). A deliberately tiny d-DNNF node
   budget exercises the mid-solve degradation ladder: the forced
   knowledge-compilation run aborts at the budget and completes on the
   naive rung with the same values. *)
let e21 () =
  header "E21 (solve planner): --fallback auto vs forced exact tiers";
  Printf.printf
    "auto rows carry best_forced_s for validate.exe's 1.2x gate; the budget\n\
     row aborts knowledge compilation mid-solve and degrades to naive.\n";
  Printf.printf "%-18s %6s %8s %12s %12s %12s %7s %7s\n" "workload" "m" "players"
    "auto" "kc" "naive" "ratio" "agree";
  let module Ddnnf = Aggshap_lineage.Ddnnf in
  let q_rst = Parser.parse_query_exn "Q() <- R(x), T(x, y), S(y)" in
  (* Same family as E20: n = 3m + 2 players, all endogenous. *)
  let rst_db m =
    let db = ref Database.empty in
    for i = 0 to m - 1 do
      db := Database.add (Fact.of_ints "R" [ i ]) !db;
      db := Database.add (Fact.of_ints "S" [ i ]) !db;
      db := Database.add (Fact.of_ints "T" [ i; i ]) !db
    done;
    for i = 0 to Stdlib.min 1 (m - 1) do
      db := Database.add (Fact.of_ints "T" [ i; (i + 1) mod m ]) !db
    done;
    !db
  in
  let exact_vec (all, _report) =
    List.map
      (fun (f, outcome) ->
        match outcome with
        | Core.Solver.Exact v -> (f, v)
        | Core.Solver.Estimate _ -> failwith "E21: unexpected estimate")
      all
  in
  let same a b =
    List.length a = List.length b
    && List.for_all2 (fun (f, v) (g, w) -> Fact.equal f g && Q.equal v w) a b
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let a = Agg_query.make Aggregate.Count (Value_fn.const ~rel:"R" Q.one) q_rst in
  let results = ref [] in
  let row workload m players wall extra =
    let open Bench_json in
    results :=
      Obj
        ([ ("experiment", String "E21");
           ("workload", String workload);
           ("n", Int m);
           ("players", Int players);
           ("wall_s", Float wall) ]
        @ extra
        @ [ ("kernels", Obj []) ])
      :: !results
  in
  (* Full-vector naive is n·2^n: only run it where that is sane. *)
  let naive_cap = 14 in
  let sizes = if quick then [ 3; 4 ] else [ 3; 4; 6; 8 ] in
  List.iter
    (fun m ->
      let db = rst_db m in
      let players = Database.endo_size db in
      let solve fallback = Core.Solver.shapley_all ~fallback ~jobs:1 a db in
      let auto_res, t_auto = time (fun () -> solve `Auto) in
      let kc_res, t_kc = time (fun () -> solve `Knowledge_compilation) in
      let naive =
        if players <= naive_cap then Some (time (fun () -> solve `Naive))
        else None
      in
      let auto_vec = exact_vec auto_res in
      let agree =
        same auto_vec (exact_vec kc_res)
        && (match naive with
            | Some (res, _) -> same auto_vec (exact_vec res)
            | None -> true)
      in
      let best_forced =
        match naive with
        | Some (_, t_n) -> Stdlib.min t_kc t_n
        | None -> t_kc
      in
      let ratio = t_auto /. Stdlib.max 1e-9 best_forced in
      Printf.printf "%-18s %6d %8d %12s %12s %12s %6.1fx %7s\n" "count_rst:auto" m
        players (pp_time (Some t_auto)) (pp_time (Some t_kc))
        (pp_time (Option.map snd naive))
        ratio
        (if agree then "ok" else "MISMATCH");
      if not agree then
        failwith "E21: the planner's auto pick diverges from a forced exact tier";
      let open Bench_json in
      row "count_rst:auto" m players t_auto
        [ ("best_forced_s", Float best_forced);
          ("algorithm", String (snd auto_res).Core.Solver.algorithm) ];
      row "count_rst:kc" m players t_kc [];
      match naive with
      | Some (_, t_n) -> row "count_rst:naive" m players t_n []
      | None -> ())
    sizes;
  (* The degradation-ladder row: force knowledge compilation with a
     node budget far below what the compilation needs; the solve must
     abort mid-compilation, fall to the naive rung, and still agree. *)
  let m = 3 in
  let db = rst_db m in
  let players = Database.endo_size db in
  Ddnnf.reset_stats ();
  let budget_res, t_budget =
    time (fun () ->
        Core.Solver.shapley_all ~fallback:`Knowledge_compilation
          ~kc_node_budget:5 ~jobs:1 a db)
  in
  let aborts = (Ddnnf.stats ()).Ddnnf.budget_aborts in
  let naive_vec =
    exact_vec (Core.Solver.shapley_all ~fallback:`Naive ~jobs:1 a db)
  in
  let degraded =
    contains (snd budget_res).Core.Solver.algorithm "node-budget abort"
  in
  let agree = same (exact_vec budget_res) naive_vec in
  Printf.printf "%-18s %6d %8d %12s %12s %12s %7s %7s\n" "count_rst:budget" m
    players (pp_time (Some t_budget)) "-" "-" "-"
    (if degraded && agree && aborts > 0 then "ok" else "MISMATCH");
  if not degraded then
    failwith "E21: the node budget did not abort the compilation";
  if aborts = 0 then failwith "E21: budget abort left the Ddnnf counter at 0";
  if not agree then
    failwith "E21: the degraded solve diverges from naive enumeration";
  (let open Bench_json in
   row "count_rst:budget" m players t_budget
     [ ("kc_budget_aborts", Int aborts);
       ("algorithm", String (snd budget_res).Core.Solver.algorithm) ]);
  List.rev !results

let write_json path rows =
  let report =
    Bench_json.Obj
      [ ("schema", Bench_json.String Bench_json.schema_version);
        ("quick", Bench_json.Bool quick);
        ("results", Bench_json.List rows) ]
  in
  (match Bench_json.validate report with
   | Ok () -> ()
   | Error msg -> failwith ("bench: emitted report violates its own schema: " ^ msg));
  let oc = open_out path in
  output_string oc (Bench_json.to_string report);
  close_out oc;
  Printf.printf "\nwrote %s (%s, %d result rows)\n" path Bench_json.schema_version
    (List.length rows)

(* A1: ablation — Boolean membership via the direct DP vs the compiled
   d-tree backend (Remark 4.5). *)
let a1 () =
  header "A1 (ablation, Remark 4.5): membership via direct DP vs compiled d-tree";
  Printf.printf "%8s %8s %10s %12s %12s %8s\n" "rows" "players" "tree size" "dp time"
    "dtree time" "agree";
  let q = Cq.make_boolean Catalog.q_xyy in
  let sizes = if quick then [ 20; 60 ] else [ 20; 60; 120; 200 ] in
  List.iter
    (fun rows ->
      let db = xyy_db rows in
      let f = first_endo db in
      let v1, t1 = time (fun () -> Core.Boolean_dp.shapley q db f) in
      let (v2, tree_size), t2 =
        time (fun () ->
            let tree = Core.Dtree.compile q db in
            (Core.Dtree.shapley tree db f, Core.Dtree.size tree))
      in
      Printf.printf "%8d %8d %10d %12s %12s %8s\n" rows (Database.endo_size db) tree_size
        (pp_time (Some t1)) (pp_time (Some t2))
        (if Q.equal v1 v2 then "ok" else "MISMATCH"))
    sizes

(* A2: ablation — Shapley vs Banzhaf from the same sum_k machinery. *)
let a2 () =
  header "A2 (ablation, Sec 3.2): Shapley vs Banzhaf from the same sum_k vectors";
  Printf.printf "%8s %12s %12s\n" "rows" "shapley" "banzhaf";
  let sizes = if quick then [ 20; 60 ] else [ 20; 60; 120 ] in
  List.iter
    (fun rows ->
      let db = xyy_db rows in
      let f = first_endo db in
      let a = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy in
      let _, t_s = time (fun () -> Core.Minmax.shapley a db f) in
      let _, t_b = time (fun () -> Core.Sumk.banzhaf_of Core.Minmax.sum_k a db f) in
      Printf.printf "%8d %12s %12s\n" rows (pp_time (Some t_s)) (pp_time (Some t_b)))
    sizes

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment             *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let stage = Staged.stage in
  let db_xyy = xyy_db 30 in
  let f_xyy = first_endo db_xyy in
  let db_full = xyy_db 12 in
  let f_full = first_endo db_full in
  let db_q1 = q1_db 30 in
  let f_q1 = first_endo db_q1 in
  let db_ex = exists_db 30 in
  let f_ex = first_endo db_ex in
  let db_xyyz = xyyz_db 30 in
  let f_xyyz = first_endo db_xyyz in
  let db_single = single_db 60 in
  let f_single = first_endo db_single in
  let q_pair = Parser.parse_query_exn "Q(u, v) <- R(u, v)" in
  let sc = Setcover.make ~universe:3 [ [ 1; 2 ]; [ 2; 3 ]; [ 3 ] ] in
  let a_max = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy in
  let a_cdist = Agg_query.make Aggregate.Count_distinct (vmod "R" 0) Catalog.q_xyy in
  let a_avg = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy_full in
  let a_med = Agg_query.make Aggregate.Median (vid "R" 0) Catalog.q_xyy_full in
  let a_dup = Agg_query.make Aggregate.Has_duplicates (vmod "R" 0) Catalog.q1_sq in
  let a_sum = Agg_query.make Aggregate.Sum (vid "R" 0) Catalog.q_exists in
  let a_max1 = Agg_query.make Aggregate.Max (vid "R" 1) q_pair in
  let a_avg1 = Agg_query.make Aggregate.Avg (vid "R" 1) q_pair in
  let tau_t = Value_fn.relu ~rel:"T" ~pos:0 in
  [ Test.make ~name:"e1_classify"
      (stage (fun () -> List.map (fun (_, q, _) -> Hierarchy.classify q) Catalog.figure1));
    Test.make ~name:"e2_max_dp_n30"
      (stage (fun () -> Core.Minmax.shapley a_max db_xyy f_xyy));
    Test.make ~name:"e2b_cdist_dp_n30"
      (stage (fun () -> Core.Cdist.shapley a_cdist db_xyy f_xyy));
    Test.make ~name:"e3_avg_dp_n12"
      (stage (fun () -> Core.Avg_quantile.shapley a_avg db_full f_full));
    Test.make ~name:"e3b_median_dp_n12"
      (stage (fun () -> Core.Avg_quantile.shapley a_med db_full f_full));
    Test.make ~name:"e4_dup_dp_n30"
      (stage (fun () -> Core.Dup.shapley a_dup db_q1 f_q1));
    Test.make ~name:"e5_naive_avg_n10"
      (stage
         (let db = xyy_db 10 in
          let f = first_endo db in
          let hard = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy in
          fun () -> Core.Naive.shapley hard db f));
    Test.make ~name:"e6_closed_max_n60"
      (stage (fun () -> Core.Closed_form.max_single_atom a_max1 db_single f_single));
    Test.make ~name:"e6_closed_avg_n60"
      (stage (fun () -> Core.Closed_form.avg_single_atom a_avg1 db_single f_single));
    Test.make ~name:"e7_montecarlo_1k"
      (stage (fun () -> Core.Monte_carlo.shapley ~seed:1 ~samples:1000 a_avg db_full f_full));
    Test.make ~name:"e8_localized_avg_n30"
      (stage (fun () -> Core.Localization.avg_on_t_shapley tau_t db_xyyz f_xyyz));
    Test.make ~name:"e9_sum_dp_n30"
      (stage (fun () -> Core.Sum_count.shapley a_sum db_ex f_ex));
    Test.make ~name:"e10_avg_reduction"
      (stage (fun () -> Avg_red.count_covers_via_shapley sc));
    Test.make ~name:"a1_dtree_compile_n60"
      (stage
         (let db = xyy_db 60 in
          let qb = Cq.make_boolean Catalog.q_xyy in
          fun () -> Core.Dtree.compile qb db));
    Test.make ~name:"e12_perm_reduction"
      (stage
         (let c4 = Setcover.make ~universe:4 [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 1 ] ] in
          fun () -> Perm_red.permanent_via_shapley c4));
  ]

let run_bechamel () =
  header "Bechamel micro-benchmarks (one per experiment)";
  let open Bechamel in
  let open Toolkit in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if quick then 0.1 else 0.5))
      ~kde:None ()
  in
  let grouped = Test.make_grouped ~name:"aggshap" (bechamel_tests ()) in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  Printf.printf "%-32s %16s %10s\n" "benchmark" "time/run" "r²";
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with
        | Some (e :: _) -> e
        | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square r with Some v -> v | None -> nan in
      let human =
        if est > 1e9 then Printf.sprintf "%.3f s" (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
        else Printf.sprintf "%.1f us" (est /. 1e3)
      in
      Printf.printf "%-32s %16s %10.4f\n" name human r2)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let () =
  Printf.printf "aggshap benchmark harness%s\n" (if quick then " (--quick)" else "");
  List.iter
    (fun (name, f) -> if want name then f ())
    [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
      ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
      ("e13", e13) ];
  let rows_of name f = if want name then f () else [] in
  let e14_rows = rows_of "e14" e14 in
  let e15_rows = rows_of "e15" e15 in
  let e16_rows = rows_of "e16" e16 in
  let e18_rows = rows_of "e18" e18 in
  let e19_rows = rows_of "e19" e19 in
  let e20_rows = rows_of "e20" e20 in
  let e21_rows = rows_of "e21" e21 in
  if want "a1" then a1 ();
  if want "a2" then a2 ();
  if want "bechamel" then run_bechamel ();
  (match json_path with
   | Some path ->
     write_json path
       (e14_rows @ e15_rows @ e16_rows @ e18_rows @ e19_rows @ e20_rows
       @ e21_rows)
   | None -> ());
  print_newline ();
  print_endline "all experiments completed; every cross-check above reports 'ok'"
