(* BENCH_v1: the machine-readable bench baseline schema.

   The JSON value type, emitter, and parser live in [Aggshap_json.Json]
   (shared with the server's wire protocol and session snapshots); this
   module re-exports them and keeps the schema validator for the reports
   produced by [bench/main.exe --json] and [bench/loadgen.exe --json],
   checked in CI by [bench/validate.exe]:

   {
     "schema": "BENCH_v1",
     "quick": <bool>,
     "results": [
       { "experiment": <string>, "workload": <string>,
         "n": <int>, "players": <int>, "wall_s": <number >= 0>,
         "kernels": { <counter name>: <int >= 0>, ... } },
       ...
     ]
   } *)

include Aggshap_json.Json

(* ------------------------------------------------------------------ *)
(* BENCH_v1 schema validation                                          *)
(* ------------------------------------------------------------------ *)

let schema_version = "BENCH_v1"

let validate (v : t) : (unit, string) result =
  let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e in
  let field obj name =
    match List.assoc_opt name obj with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let as_obj what = function
    | Obj fields -> Ok fields
    | _ -> Error (what ^ " is not an object")
  in
  let as_number what = function
    | Int i -> Ok (float_of_int i)
    | Float f -> Ok f
    | _ -> Error (what ^ " is not a number")
  in
  let result_ok i r =
    let what = Printf.sprintf "results[%d]" i in
    let* fields = as_obj what r in
    let* () =
      List.fold_left
        (fun acc name ->
          let* () = acc in
          let* v = field fields name in
          match v with
          | String s when String.length s > 0 -> Ok ()
          | String _ -> Error (Printf.sprintf "%s.%s is empty" what name)
          | _ -> Error (Printf.sprintf "%s.%s is not a string" what name))
        (Ok ()) [ "experiment"; "workload" ]
    in
    let* () =
      List.fold_left
        (fun acc name ->
          let* () = acc in
          let* v = field fields name in
          match v with
          | Int n when n >= 0 -> Ok ()
          | Int _ -> Error (Printf.sprintf "%s.%s is negative" what name)
          | _ -> Error (Printf.sprintf "%s.%s is not an integer" what name))
        (Ok ()) [ "n"; "players" ]
    in
    let* wall = field fields "wall_s" in
    let* wall = as_number (what ^ ".wall_s") wall in
    let* () =
      if wall >= 0.0 then Ok () else Error (what ^ ".wall_s is negative")
    in
    let* kernels = field fields "kernels" in
    let* kernels = as_obj (what ^ ".kernels") kernels in
    List.fold_left
      (fun acc (k, v) ->
        let* () = acc in
        match v with
        | Int n when n >= 0 -> Ok ()
        | Int _ -> Error (Printf.sprintf "%s.kernels.%s is negative" what k)
        | _ -> Error (Printf.sprintf "%s.kernels.%s is not an integer" what k))
      (Ok ()) kernels
  in
  let* top = as_obj "top-level value" v in
  let* schema = field top "schema" in
  let* () =
    match schema with
    | String s when String.equal s schema_version -> Ok ()
    | String s -> Error (Printf.sprintf "schema is %S, expected %S" s schema_version)
    | _ -> Error "schema is not a string"
  in
  let* quick = field top "quick" in
  let* () = match quick with Bool _ -> Ok () | _ -> Error "quick is not a boolean" in
  let* results = field top "results" in
  match results with
  | List rs ->
    let* () =
      List.fold_left
        (fun acc (i, r) ->
          let* () = acc in
          result_ok i r)
        (Ok ())
        (List.mapi (fun i r -> (i, r)) rs)
    in
    if rs = [] then Error "results is empty" else Ok ()
  | _ -> Error "results is not an array"

(* ------------------------------------------------------------------ *)
(* Row access (for the --compare regression gate)                      *)
(* ------------------------------------------------------------------ *)

type row = {
  experiment : string;
  workload : string;
  n : int;
  players : int;
  wall_s : float;
}

(* Rows of a validated report, in file order. Named to stay clear of
   the open-site locals in bench/main.ml. *)
let report_rows (v : t) : row list =
  let number = function Int i -> float_of_int i | Float f -> f | _ -> 0.0 in
  match member "results" v with
  | Some (List rs) ->
    List.filter_map
      (fun r ->
        match (member "experiment" r, member "workload" r) with
        | Some (String experiment), Some (String workload) ->
          let int_of name = match member name r with Some (Int i) -> i | _ -> 0 in
          Some
            { experiment; workload; n = int_of "n"; players = int_of "players";
              wall_s = (match member "wall_s" r with Some w -> number w | None -> 0.0) }
        | _ -> None)
      rs
  | _ -> []

let row_key r = Printf.sprintf "%s/%s n=%d players=%d" r.experiment r.workload r.n r.players
