(* Minimal JSON support for the machine-readable bench baseline.

   The environment has no JSON package, so this is a small hand-rolled
   value type with an emitter, a recursive-descent parser, and a
   validator for the BENCH_v1 schema produced by [bench/main.exe --json]
   and checked in CI by [bench/validate.exe]:

   {
     "schema": "BENCH_v1",
     "quick": <bool>,
     "results": [
       { "experiment": <string>, "workload": <string>,
         "n": <int>, "players": <int>, "wall_s": <number >= 0>,
         "kernels": { <counter name>: <int >= 0>, ... } },
       ...
     ]
   } *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_literal f =
  (* NaN and infinities are not valid JSON literals. *)
  if Float.is_nan f || not (Float.is_finite f) then "0.0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec emit buf indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        emit buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf ": ";
        emit buf (indent + 2) item)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let parse_literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
            | Some _ -> Buffer.add_char buf '?' (* non-ASCII: placeholder *)
            | None -> fail "malformed \\u escape");
           pos := !pos + 4
         | _ -> fail "malformed escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "malformed number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> parse_literal "null" Null
    | Some 't' -> parse_literal "true" (Bool true)
    | Some 'f' -> parse_literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* BENCH_v1 schema validation                                          *)
(* ------------------------------------------------------------------ *)

let schema_version = "BENCH_v1"

let validate (v : t) : (unit, string) result =
  let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e in
  let field obj name =
    match List.assoc_opt name obj with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let as_obj what = function
    | Obj fields -> Ok fields
    | _ -> Error (what ^ " is not an object")
  in
  let as_number what = function
    | Int i -> Ok (float_of_int i)
    | Float f -> Ok f
    | _ -> Error (what ^ " is not a number")
  in
  let result_ok i r =
    let what = Printf.sprintf "results[%d]" i in
    let* fields = as_obj what r in
    let* () =
      List.fold_left
        (fun acc name ->
          let* () = acc in
          let* v = field fields name in
          match v with
          | String s when String.length s > 0 -> Ok ()
          | String _ -> Error (Printf.sprintf "%s.%s is empty" what name)
          | _ -> Error (Printf.sprintf "%s.%s is not a string" what name))
        (Ok ()) [ "experiment"; "workload" ]
    in
    let* () =
      List.fold_left
        (fun acc name ->
          let* () = acc in
          let* v = field fields name in
          match v with
          | Int n when n >= 0 -> Ok ()
          | Int _ -> Error (Printf.sprintf "%s.%s is negative" what name)
          | _ -> Error (Printf.sprintf "%s.%s is not an integer" what name))
        (Ok ()) [ "n"; "players" ]
    in
    let* wall = field fields "wall_s" in
    let* wall = as_number (what ^ ".wall_s") wall in
    let* () =
      if wall >= 0.0 then Ok () else Error (what ^ ".wall_s is negative")
    in
    let* kernels = field fields "kernels" in
    let* kernels = as_obj (what ^ ".kernels") kernels in
    List.fold_left
      (fun acc (k, v) ->
        let* () = acc in
        match v with
        | Int n when n >= 0 -> Ok ()
        | Int _ -> Error (Printf.sprintf "%s.kernels.%s is negative" what k)
        | _ -> Error (Printf.sprintf "%s.kernels.%s is not an integer" what k))
      (Ok ()) kernels
  in
  let* top = as_obj "top-level value" v in
  let* schema = field top "schema" in
  let* () =
    match schema with
    | String s when String.equal s schema_version -> Ok ()
    | String s -> Error (Printf.sprintf "schema is %S, expected %S" s schema_version)
    | _ -> Error "schema is not a string"
  in
  let* quick = field top "quick" in
  let* () = match quick with Bool _ -> Ok () | _ -> Error "quick is not a boolean" in
  let* results = field top "results" in
  match results with
  | List rs ->
    let* () =
      List.fold_left
        (fun acc (i, r) ->
          let* () = acc in
          result_ok i r)
        (Ok ())
        (List.mapi (fun i r -> (i, r)) rs)
    in
    if rs = [] then Error "results is empty" else Ok ()
  | _ -> Error "results is not an array"
